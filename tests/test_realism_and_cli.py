"""Tests for realism scoring (section 5) and the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import fuzz_main, simulate_main, trace_main
from repro.netsim import SimulationConfig
from repro.scoring import RealismScorer, default_reference_panel
from repro.tcp import Reno
from repro.traces import LinkTrace, PacketTrace, TrafficTrace


class TestRealismScorer:
    @pytest.fixture(scope="class")
    def scorer(self):
        # A single-CCA panel keeps these tests fast; the full panel is
        # exercised by the Fig. 5 benchmark.
        return RealismScorer(
            panel={"reno": Reno},
            config=SimulationConfig(duration=1.5),
            top_fraction=1.0,
            threshold=0.6,
        )

    def test_steady_link_trace_is_realistic(self, scorer):
        trace = LinkTrace(timestamps=[i * 0.001 for i in range(1500)], duration=1.5)
        report = scorer.score(trace)
        assert report.is_realistic
        assert report.per_cca_utilization["reno"] > 0.6

    def test_starved_early_trace_is_unrealistic(self, scorer):
        # All service at the very end of the run: every CCA looks terrible.
        trace = LinkTrace(timestamps=[1.4 + i * 0.0005 for i in range(200)], duration=1.5)
        report = scorer.score(trace)
        assert not report.is_realistic

    def test_light_cross_traffic_is_realistic(self, scorer):
        trace = TrafficTrace(timestamps=[0.5, 0.7, 0.9], duration=1.5, max_packets=10)
        assert scorer.score(trace).is_realistic

    def test_partition_splits_by_threshold(self, scorer):
        good = LinkTrace(timestamps=[i * 0.001 for i in range(1500)], duration=1.5)
        bad = LinkTrace(timestamps=[1.4 + i * 0.0005 for i in range(200)], duration=1.5)
        partition = scorer.partition([good, bad])
        assert len(partition["valid"]) == 1
        assert len(partition["invalid"]) == 1

    def test_default_panel_contains_paper_ccas(self):
        assert set(default_reference_panel()) == {"reno", "cubic", "bbr"}

    def test_empty_panel_rejected(self):
        with pytest.raises(ValueError):
            RealismScorer(panel={})

    def test_default_panel_used_when_unspecified(self):
        scorer = RealismScorer(config=SimulationConfig(duration=1.0))
        assert set(scorer.panel) == {"reno", "cubic", "bbr"}


class TestCli:
    def test_simulate_prints_metrics(self, capsys):
        exit_code = simulate_main(["--cca", "reno", "--duration", "1.0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "throughput_mbps" in output

    def test_simulate_with_builtin_attack(self, capsys):
        exit_code = simulate_main(["--cca", "reno", "--duration", "2.0", "--attack", "lowrate"])
        assert exit_code == 0
        assert "throughput_mbps" in capsys.readouterr().out

    def test_trace_generate_and_inspect_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert trace_main(["generate", "--mode", "link", "--duration", "1.0", "--output", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["type"] == "LinkTrace"
        assert trace_main(["inspect", str(path)]) == 0
        assert "average rate" in capsys.readouterr().out

    def test_trace_generate_traffic_mode(self, tmp_path):
        path = tmp_path / "traffic.json"
        trace_main(
            ["generate", "--mode", "traffic", "--duration", "1.0", "--max-packets", "50",
             "--output", str(path)]
        )
        trace = PacketTrace.from_json(path.read_text())
        assert isinstance(trace, TrafficTrace)
        assert trace.packet_count <= 50

    def test_simulate_with_trace_file(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        trace_main(["generate", "--mode", "link", "--duration", "1.0", "--output", str(path)])
        assert simulate_main(["--cca", "cubic", "--duration", "1.0", "--trace", str(path)]) == 0

    def test_fuzz_small_run(self, tmp_path, capsys):
        output = tmp_path / "best.json"
        exit_code = fuzz_main(
            [
                "--cca", "reno", "--mode", "traffic", "--population", "4",
                "--generations", "2", "--duration", "1.5", "--output", str(output),
            ]
        )
        assert exit_code == 0
        assert output.exists()
        trace = PacketTrace.from_json(output.read_text())
        assert isinstance(trace, TrafficTrace)
        assert "generation" in capsys.readouterr().out
