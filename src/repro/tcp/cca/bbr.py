"""TCP BBR (v1) congestion control.

This is a faithful-in-mechanism reimplementation of the parts of BBRv1 that
the paper's findings exercise (section 4.1):

* a windowed **max filter over the last 10 probing rounds** of delivery-rate
  samples (the bottleneck-bandwidth estimate),
* an 8-phase pacing-gain cycle ``[1.25, 0.75, 1, 1, 1, 1, 1, 1]`` in
  PROBE_BW,
* **round counting driven by ``prior_delivered``**: a probing round ends when
  the ACKed segment's ``prior_delivered`` reaches the ``delivered`` count
  recorded at the start of the round.  Because spurious retransmissions
  rewrite ``prior_delivered``, rounds can end prematurely after an RTO,
  rotating genuine bandwidth samples out of the max filter and replacing them
  with tiny post-RTO samples — the permanent-stall bug CC-Fuzz found,
* a min-RTT filter with PROBE_RTT, and the paper's proposed mitigation:
  ``probe_rtt_on_rto=True`` enters PROBE_RTT when an RTO fires, capping the
  window at 4 segments long enough for in-flight SACKs to arrive and thereby
  avoiding most spurious retransmissions (Fig. 4d).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from .base import AckEvent, CongestionControl


class Bbr(CongestionControl):
    """Simplified-but-mechanistic BBRv1."""

    name = "bbr"

    HIGH_GAIN = 2.885                       #: 2 / ln(2), startup gain
    DRAIN_GAIN = 1.0 / 2.885
    PACING_GAIN_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    CWND_GAIN = 2.0
    BTLBW_FILTER_ROUNDS = 10                #: max-filter window, in probing rounds
    RTPROP_FILTER_SECONDS = 10.0
    PROBE_RTT_DURATION = 0.2                #: seconds spent at the minimal window
    MIN_CWND = 4.0

    STARTUP = "STARTUP"
    DRAIN = "DRAIN"
    PROBE_BW = "PROBE_BW"
    PROBE_RTT = "PROBE_RTT"

    #: Maximum retained ``state_history`` transitions (half verbatim head,
    #: half most-recent ring); the overflow count is kept in
    #: ``state_history_truncated``.
    STATE_HISTORY_LIMIT = 256

    def __init__(
        self,
        initial_cwnd: float = 10.0,
        initial_rtt: float = 0.04,
        probe_rtt_on_rto: bool = False,
        min_pacing_rate: float = 0.25,
        record_history: bool = True,
    ) -> None:
        super().__init__()
        self.probe_rtt_on_rto = probe_rtt_on_rto
        self.min_pacing_rate = min_pacing_rate
        self.record_history = record_history

        self.state = self.STARTUP
        self.pacing_gain = self.HIGH_GAIN
        self.cwnd_gain = self.HIGH_GAIN

        self._cwnd = float(initial_cwnd)
        self.initial_rtt = initial_rtt

        # Bottleneck bandwidth max filter: (round_count, rate) samples, plus
        # a monotonic-decreasing companion deque so the windowed max is O(1)
        # per query instead of a rescan of every sample.  ``btlbw`` is read
        # on every pacing decision, so the rescan dominated whole-simulation
        # profiles before this.
        self._btlbw_samples: Deque[Tuple[int, float]] = deque()
        self._btlbw_max: Deque[Tuple[int, float]] = deque()
        self.rtprop = float("inf")
        self.rtprop_stamp = 0.0
        self._rtprop_expired = False

        # Round accounting (the prior_delivered mechanism).
        self.next_round_delivered = 0
        self.round_count = 0
        self.round_start = False

        # STARTUP full-pipe detection.
        self.full_bw = 0.0
        self.full_bw_count = 0
        self.filled_pipe = False

        # PROBE_BW gain cycling.
        self.cycle_index = 2
        self.cycle_stamp = 0.0

        # PROBE_RTT bookkeeping.
        self.probe_rtt_done_stamp: Optional[float] = None
        self.probe_rtt_round_done = False
        self._state_before_probe_rtt = self.STARTUP

        # Loss recovery (packet conservation) bookkeeping.
        self.in_loss_recovery = False
        self.prior_cwnd = self._cwnd

        # Diagnostics for the paper's findings.
        self.premature_round_ends = 0
        self.rto_events = 0
        self.loss_events = 0
        self.bandwidth_history: List[Tuple[float, float]] = []
        # State history is bounded: the first half of the budget is kept
        # verbatim and the rest lives in a ring of the most recent
        # transitions, so an adversarial trace that oscillates the state
        # machine for hours cannot grow memory without limit.  The exact
        # transition *counts* are always preserved in
        # ``state_transition_counts`` (base class).
        self._state_history_head: List[Tuple[float, str]] = []
        self._state_history_tail: Deque[Tuple[float, str]] = deque(
            maxlen=self.STATE_HISTORY_LIMIT // 2
        )
        self.state_history_truncated = 0    #: transitions dropped from the middle
        self._last_history_state: Optional[str] = None
        self._track_state(self.state)

    # ------------------------------------------------------------------ #
    # Derived estimates
    # ------------------------------------------------------------------ #

    @property
    def btlbw(self) -> float:
        """Bottleneck bandwidth estimate in segments/second (max filter).

        The head of the monotonic deque is exactly ``max(rate for _, rate in
        self._btlbw_samples)``: appends evict dominated samples from the
        tail, expiry evicts stale maxima from the head.
        """
        if not self._btlbw_max:
            return 0.0
        return self._btlbw_max[0][1]

    @property
    def bdp(self) -> float:
        """Estimated bandwidth-delay product in segments."""
        rtprop = self.rtprop if self.rtprop != float("inf") else self.initial_rtt
        return self.btlbw * rtprop

    @property
    def cwnd(self) -> float:
        if self.state == self.PROBE_RTT:
            return self.MIN_CWND
        return max(self._cwnd, self.MIN_CWND)

    @property
    def pacing_rate(self) -> Optional[float]:
        bw = self.btlbw
        if bw <= 0:
            # Before the first bandwidth sample, pace at the startup gain over
            # the initial window / RTT (mirrors bbr_init_pacing_rate_from_rtt).
            bw = self._cwnd / self.initial_rtt
        rate = self.pacing_gain * bw
        return max(rate, self.min_pacing_rate)

    # ------------------------------------------------------------------ #
    # Main ACK processing
    # ------------------------------------------------------------------ #

    def on_ack(self, event: AckEvent) -> None:
        now = event.now
        rs = event.rate_sample

        if rs is not None:
            self._update_round(event)
            self._update_btlbw(rs)
            self._update_rtprop(now, rs)

        self._check_full_pipe()
        self._update_state_machine(now, event)
        self._update_gains()
        self._update_cwnd(event)

        self._track_state(self.state)
        if self.record_history:
            self.bandwidth_history.append((now, self.btlbw))
            if self._last_history_state != self.state:
                self._append_state_history(now, self.state)

    def _update_round(self, event: AckEvent) -> None:
        rs = event.rate_sample
        assert rs is not None
        if rs.prior_delivered >= self.next_round_delivered:
            self.next_round_delivered = event.delivered
            self.round_count += 1
            self.round_start = True
            if rs.is_retransmit:
                # The round was closed by a sample anchored on a retransmitted
                # segment — the premature round ending of section 4.1.
                self.premature_round_ends += 1
        else:
            self.round_start = False

    def _update_btlbw(self, rs) -> None:
        if rs.delivery_rate <= 0:
            return
        rate = rs.delivery_rate
        round_count = self.round_count
        self._btlbw_samples.append((round_count, rate))
        # Monotonic max filter: drop dominated samples from the tail (a tie
        # keeps the newer sample, which lives longer — same max either way),
        # then expire stale entries from both deques' heads.
        btlbw_max = self._btlbw_max
        while btlbw_max and btlbw_max[-1][1] <= rate:
            btlbw_max.pop()
        btlbw_max.append((round_count, rate))
        horizon = round_count - self.BTLBW_FILTER_ROUNDS
        while self._btlbw_samples and self._btlbw_samples[0][0] <= horizon:
            self._btlbw_samples.popleft()
        while btlbw_max and btlbw_max[0][0] <= horizon:
            btlbw_max.popleft()

    def _update_rtprop(self, now: float, rs) -> None:
        # The expiry decision is latched *before* this sample may refresh the
        # filter, mirroring bbr_update_min_rtt(): an expired filter still
        # triggers PROBE_RTT even though the same ACK provides a new minimum.
        self._rtprop_expired = (
            self.rtprop != float("inf")
            and now - self.rtprop_stamp > self.RTPROP_FILTER_SECONDS
        )
        if rs.rtt is None:
            return
        if rs.rtt <= self.rtprop or self._rtprop_expired:
            self.rtprop = rs.rtt
            self.rtprop_stamp = now

    # ------------------------------------------------------------------ #
    # State machine
    # ------------------------------------------------------------------ #

    def _check_full_pipe(self) -> None:
        if self.filled_pipe or not self.round_start:
            return
        if self.btlbw >= self.full_bw * 1.25:
            self.full_bw = self.btlbw
            self.full_bw_count = 0
            return
        self.full_bw_count += 1
        if self.full_bw_count >= 3:
            self.filled_pipe = True

    def _update_state_machine(self, now: float, event: AckEvent) -> None:
        if self.state == self.STARTUP and self.filled_pipe:
            self.state = self.DRAIN
        if self.state == self.DRAIN and event.in_flight <= self.bdp:
            self._enter_probe_bw(now)
        if self.state == self.PROBE_BW:
            self._advance_cycle(now, event)
        self._check_probe_rtt(now, event)

    def _enter_probe_bw(self, now: float) -> None:
        self.state = self.PROBE_BW
        self.cycle_index = 2
        self.cycle_stamp = now

    def _advance_cycle(self, now: float, event: AckEvent) -> None:
        rtprop = self.rtprop if self.rtprop != float("inf") else self.initial_rtt
        elapsed = now - self.cycle_stamp
        gain = self.PACING_GAIN_CYCLE[self.cycle_index]
        should_advance = elapsed > rtprop
        if gain == 0.75:
            # Leave the drain phase as soon as the queue is drained.
            should_advance = should_advance or event.in_flight <= self.bdp
        if gain == 1.25:
            # Stay in the probing phase a full rtprop even if a round ends.
            should_advance = elapsed > rtprop
        if should_advance:
            self.cycle_index = (self.cycle_index + 1) % len(self.PACING_GAIN_CYCLE)
            self.cycle_stamp = now

    def _check_probe_rtt(self, now: float, event: AckEvent) -> None:
        if self.state != self.PROBE_RTT:
            if self._rtprop_expired:
                self._enter_probe_rtt(now)
                self._rtprop_expired = False
            return
        if self.probe_rtt_done_stamp is None:
            self.probe_rtt_done_stamp = now + self.PROBE_RTT_DURATION
        if self.round_start:
            self.probe_rtt_round_done = True
        if self.probe_rtt_round_done and now >= self.probe_rtt_done_stamp:
            self.rtprop_stamp = now
            self._exit_probe_rtt(now)

    def _enter_probe_rtt(self, now: float) -> None:
        if self.state != self.PROBE_RTT:
            self._state_before_probe_rtt = self.state
        self.state = self.PROBE_RTT
        self.probe_rtt_done_stamp = now + self.PROBE_RTT_DURATION
        self.probe_rtt_round_done = False

    def _exit_probe_rtt(self, now: float) -> None:
        if self.filled_pipe:
            self._enter_probe_bw(now)
        else:
            self.state = self.STARTUP
        self.probe_rtt_done_stamp = None

    def _update_gains(self) -> None:
        if self.state == self.STARTUP:
            self.pacing_gain = self.HIGH_GAIN
            self.cwnd_gain = self.HIGH_GAIN
        elif self.state == self.DRAIN:
            self.pacing_gain = self.DRAIN_GAIN
            self.cwnd_gain = self.HIGH_GAIN
        elif self.state == self.PROBE_BW:
            self.pacing_gain = self.PACING_GAIN_CYCLE[self.cycle_index]
            self.cwnd_gain = self.CWND_GAIN
        elif self.state == self.PROBE_RTT:
            self.pacing_gain = 1.0
            self.cwnd_gain = 1.0

    # ------------------------------------------------------------------ #
    # Congestion window
    # ------------------------------------------------------------------ #

    def _update_cwnd(self, event: AckEvent) -> None:
        target = max(self.cwnd_gain * self.bdp, self.MIN_CWND)
        if self.in_loss_recovery:
            # Packet conservation during the first phase of loss recovery:
            # the window tracks what is actually in flight plus what this ACK
            # delivered, so retransmissions go out as fast as ACKs return.
            conserved = event.in_flight + event.newly_delivered
            self._cwnd = max(conserved, self.MIN_CWND)
            if not (event.in_recovery or event.in_rto_recovery):
                self.in_loss_recovery = False
                self._cwnd = max(self.prior_cwnd, target)
            return
        if self.filled_pipe:
            self._cwnd = min(self._cwnd + event.newly_delivered, target)
        else:
            # During STARTUP grow by the delivered count (doubling per round).
            self._cwnd = self._cwnd + event.newly_delivered

    # ------------------------------------------------------------------ #
    # Loss / RTO hooks
    # ------------------------------------------------------------------ #

    def on_loss(self, now: float, in_flight: int) -> None:
        self.loss_events += 1
        if not self.in_loss_recovery:
            self.recovery_entries += 1
            self.prior_cwnd = max(self._cwnd, self.prior_cwnd if self.in_loss_recovery else 0.0)
        self.in_loss_recovery = True
        self._cwnd = max(float(in_flight), self.MIN_CWND)
        self._track_state(self.state)

    def on_recovery_exit(self, now: float) -> None:
        if self.in_loss_recovery:
            self.recovery_exits += 1
            self.in_loss_recovery = False
            target = max(self.cwnd_gain * self.bdp, self.MIN_CWND)
            self._cwnd = max(self.prior_cwnd, target)
        self._track_state(self.state)

    def on_rto(self, now: float, in_flight: int) -> None:
        self.rto_events += 1
        self.prior_cwnd = max(self._cwnd, self.MIN_CWND)
        if self.probe_rtt_on_rto:
            # The paper's proposed mitigation: slow down immediately so the
            # in-flight SACKs arrive before their segments are retransmitted.
            self._enter_probe_rtt(now)
            self._update_gains()
            self.in_loss_recovery = True
            self._cwnd = self.MIN_CWND
        else:
            # Default Linux-like behaviour: collapse to one segment and let
            # packet conservation rebuild the window from returning ACKs.
            self.in_loss_recovery = True
            self._cwnd = 1.0
        self._track_state(self.state)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def _append_state_history(self, now: float, state: str) -> None:
        """Bounded append: verbatim head, most-recent-ring tail."""
        self._last_history_state = state
        if len(self._state_history_head) < self.STATE_HISTORY_LIMIT // 2:
            self._state_history_head.append((now, state))
            return
        if len(self._state_history_tail) == self._state_history_tail.maxlen:
            self.state_history_truncated += 1
        self._state_history_tail.append((now, state))

    @property
    def state_history(self) -> List[Tuple[float, str]]:
        """Recorded ``(time, state)`` transitions (bounded; see __init__)."""
        return self._state_history_head + list(self._state_history_tail)

    def diagnostics(self) -> Dict[str, Any]:
        diag = super().diagnostics()
        diag.update(
            state=self.state,
            # BBR has no slow-start threshold; the closest equivalent control
            # is the pre-loss window it restores on recovery exit.
            cwnd=self.cwnd,
            ssthresh=self.prior_cwnd,
            loss_events=self.loss_events,
            btlbw=self.btlbw,
            rtprop=self.rtprop,
            bdp=self.bdp,
            round_count=self.round_count,
            premature_round_ends=self.premature_round_ends,
            rto_events=self.rto_events,
            filled_pipe=self.filled_pipe,
            probe_rtt_on_rto=self.probe_rtt_on_rto,
            pacing_gain=self.pacing_gain,
            cwnd_gain=self.cwnd_gain,
            state_history_truncated=self.state_history_truncated,
        )
        return diag
