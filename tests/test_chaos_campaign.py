"""End-to-end fault tolerance: campaigns under injected chaos.

The scheme: a control campaign records exactly which trace fingerprints the
GA evaluates first (seeding is deterministic, so a rerun of the same spec
evaluates the same initial batch).  The chaos campaign then faults a known
subset of those fingerprints and the tests assert the blast radius: the
campaign completes, the faulted jobs are quarantined with provenance (into
quarantine.json *and* the journal), and every healthy corpus entry's score
is bit-identical to a fault-free re-evaluation.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.corpus import CorpusStore
from repro.campaign.scheduler import CampaignRunner
from repro.campaign.spec import CampaignSpec, GaBudget
from repro.exec import (
    ChaosPlan,
    EvaluationJob,
    ProcessPoolBackend,
    QuarantineStore,
    SerialBackend,
    cca_identity,
    chaos_injection,
    clear_chaos,
    evaluate_job,
    failure_from_summary,
)
from repro.journal import CampaignJournal
from repro.obs.status import collect_status, format_status
from repro.scoring.objectives import make_score_function
from repro.tcp import Reno
from repro.tcp.cca import CCA_FACTORIES


@pytest.fixture(autouse=True)
def no_leaked_chaos():
    clear_chaos()
    yield
    clear_chaos()


def tiny_spec(**overrides) -> CampaignSpec:
    params = dict(
        name="chaos-e2e",
        ccas=["reno"],
        modes=["traffic"],
        objectives=["throughput"],
        budget=GaBudget(population_size=4, generations=2, duration=1.0, top_k=3),
        seed=7,
        backend="serial",
    )
    params.update(overrides)
    return CampaignSpec(**params)


class RecordingBackend(SerialBackend):
    """Serial backend that remembers each batch's trace fingerprints."""

    def __init__(self):
        super().__init__()
        self.batches = []

    def _run_jobs(self, jobs):
        self.batches.append([job.trace.fingerprint() for job in jobs])
        return super()._run_jobs(jobs)


def run_campaign(spec, corpus_dir, backend=None):
    runner = CampaignRunner(
        spec, CorpusStore(str(corpus_dir)), backend=backend, telemetry=True
    )
    return runner.run()


def first_batch_fingerprints(tmp_path):
    """The deterministic first evaluation batch of ``tiny_spec()``."""
    recorder = RecordingBackend()
    run_campaign(tiny_spec(), tmp_path / "control", backend=recorder)
    assert recorder.batches, "control campaign evaluated nothing"
    ordered = list(dict.fromkeys(recorder.batches[0]))
    assert len(ordered) >= 2, "need at least two distinct fingerprints to fault"
    return ordered


def reevaluate_entry(entry):
    """Fault-free re-evaluation of a corpus entry, discovery-conditions exact."""
    job = EvaluationJob(
        CCA_FACTORIES[entry.cca],
        entry.sim_config().with_overrides(record_series=False),
        entry.trace,
        make_score_function(entry.objective, entry.mode),
    )
    score, _ = evaluate_job(job)
    return score.total


class TestChaosCampaignSerial:
    def test_faulted_campaign_completes_quarantines_and_spares_healthy(self, tmp_path):
        targets = first_batch_fingerprints(tmp_path)
        faults = {targets[0]: "crash", targets[1]: "garbage"}
        corpus_dir = tmp_path / "chaos"
        with chaos_injection(ChaosPlan(faults=faults)):
            result = run_campaign(tiny_spec(), corpus_dir)
        # 1. The campaign completed despite the faults.
        assert len(result.outcomes) == 1

        # 2. Deterministic crashers were quarantined, with provenance.
        store = QuarantineStore.for_corpus(corpus_dir)
        assert len(store) == len(faults)
        reno = cca_identity(Reno())
        for fingerprint, kind in faults.items():
            entry = store.find(fingerprint, reno)
            assert entry is not None
            assert entry["kind"] == kind
            assert entry["attempts"] == 1
            assert entry["scenario_id"] == "reno/traffic/throughput/base"

        # 3. The journal carries the same entries (write-ahead), and replaying
        #    them into a fresh store reproduces quarantine.json exactly.
        view = CampaignJournal(CampaignJournal.corpus_path(str(corpus_dir))).replay()
        assert {e["fingerprint"] for e in view.quarantined} == set(faults)
        replayed = QuarantineStore(tmp_path / "replayed.json")
        for event in view.quarantined:
            replayed.apply_event(event)
        assert replayed.entries() == store.entries()

        # 4. Every healthy harvested entry re-evaluates bit-identically
        #    fault-free: the chaos never corrupted a healthy result.
        corpus = CorpusStore(str(corpus_dir))
        checked = 0
        for fingerprint in corpus.fingerprints():
            entry = corpus.get(fingerprint)
            if entry.origin != "fuzz" or fingerprint in faults:
                continue
            assert reevaluate_entry(entry) == entry.score
            checked += 1
        assert checked > 0

        # 5. `repro-campaign status` surfaces the failure counters.
        status = collect_status(corpus_dir)
        assert status["faults"]["failures"] >= len(faults)
        assert status["faults"]["quarantined"] >= len(faults)
        assert "faults:" in format_status(status)

    def test_resume_rebuilds_quarantine_from_journal(self, tmp_path):
        # The crash window the WAL exists for: the journal append survived
        # but quarantine.json was lost.  _prepare_resume folds the journaled
        # events back into the store, rebuilding the file.
        targets = first_batch_fingerprints(tmp_path)
        faults = {targets[0]: "crash"}
        corpus_dir = tmp_path / "chaos"
        with chaos_injection(ChaosPlan(faults=faults)):
            run_campaign(tiny_spec(), corpus_dir)
        before = QuarantineStore.for_corpus(corpus_dir).entries()
        (corpus_dir / "quarantine.json").unlink()
        runner = CampaignRunner.resume(str(corpus_dir))
        assert runner.quarantine.entries() == before


class TestChaosCampaignProcess:
    def test_hang_and_exit_under_process_backend(self, tmp_path):
        targets = first_batch_fingerprints(tmp_path)
        faults = {targets[0]: "hang", targets[1]: "exit"}
        corpus_dir = tmp_path / "chaos-proc"
        spec = tiny_spec(backend="process", workers=2, job_timeout=1.0, max_retries=1)
        with chaos_injection(ChaosPlan(faults=faults, hang_s=300.0)):
            result = run_campaign(spec, corpus_dir)
        assert len(result.outcomes) == 1
        store = QuarantineStore.for_corpus(corpus_dir)
        reno = cca_identity(Reno())
        hung = store.find(targets[0], reno)
        assert hung is not None and hung["kind"] == "timeout"
        died = store.find(targets[1], reno)
        assert died is not None and died["kind"] == "worker-death"
        assert died["attempts"] == 2  # initial try + max_retries
        # Healthy harvested entries still re-evaluate bit-identically.
        corpus = CorpusStore(str(corpus_dir))
        for fingerprint in corpus.fingerprints():
            entry = corpus.get(fingerprint)
            if entry.origin == "fuzz" and fingerprint not in faults:
                assert reevaluate_entry(entry) == entry.score
