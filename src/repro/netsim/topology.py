"""Dumbbell topology assembly.

The paper's network model (section 3.1): two sources — the flow under test
and a cross-traffic source — feed a gateway with a fixed-size drop-tail FIFO
queue; the gateway is connected to the sink by a bottleneck link with fixed
propagation delay.  ACKs return over an uncongested reverse path with the
same propagation delay.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..tcp.cca.base import CongestionControl
from ..tcp.receiver import TcpReceiver
from ..tcp.sender import TcpSender
from .crosstraffic import CrossTrafficSource
from .engine import EventScheduler
from .link import FixedRateLink, Link, TraceDrivenLink, mbps_to_pps
from .monitor import FlowMonitor
from .packet import AckPacket, CCA_FLOW, Packet
from .queue import DropTailQueue


class DumbbellTopology:
    """Wires the sender, cross traffic, gateway queue, bottleneck and sink."""

    def __init__(
        self,
        scheduler: EventScheduler,
        cca: CongestionControl,
        duration: float,
        bottleneck_rate_mbps: float = 12.0,
        propagation_delay: float = 0.02,
        queue_capacity: int = 60,
        mss_bytes: int = 1500,
        link_trace: Optional[Sequence[float]] = None,
        cross_traffic_times: Optional[Sequence[float]] = None,
        loss_times: Optional[Sequence[float]] = None,
        drop_filter: Optional[Callable[["Packet", float], bool]] = None,
        delayed_ack: bool = True,
        delack_timeout: float = 0.040,
        min_rto: float = 1.0,
        sender_start_time: float = 0.0,
        record_series: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.duration = duration
        self.mss_bytes = mss_bytes
        self.propagation_delay = propagation_delay
        # record_series=False (fuzzing) skips every series no evaluation
        # reads: per-packet records, queue-depth samples and the sender's
        # cwnd/pacing/RTT series.  The monitor's derived series — what the
        # scoring functions consume — are always collected.
        self.monitor = FlowMonitor(record_packets=record_series)

        self.queue = DropTailQueue(
            capacity_packets=queue_capacity, sample_depth=record_series
        )
        self.queue_capacity = queue_capacity

        if link_trace is not None:
            self.link: Link = TraceDrivenLink(
                scheduler,
                self.queue,
                self._deliver_to_sink,
                opportunities=link_trace,
                propagation_delay=propagation_delay,
            )
        else:
            self.link = FixedRateLink(
                scheduler,
                self.queue,
                self._deliver_to_sink,
                rate_pps=mbps_to_pps(bottleneck_rate_mbps, mss_bytes),
                propagation_delay=propagation_delay,
            )

        self.receiver = TcpReceiver(
            scheduler,
            send_ack=self._return_ack,
            delayed_ack=delayed_ack,
            delack_timeout=delack_timeout,
        )
        self.sender = TcpSender(
            scheduler,
            cca=cca,
            transmit=self._send_from_source,
            mss_bytes=mss_bytes,
            min_rto=min_rto,
            start_time=sender_start_time,
            record_series=record_series,
        )

        self.cross_traffic: Optional[CrossTrafficSource] = None
        if cross_traffic_times is not None:
            self.cross_traffic = CrossTrafficSource(
                scheduler,
                enqueue=self._inject_cross_traffic,
                injection_times=cross_traffic_times,
                mss_bytes=mss_bytes,
            )

        # ACKs return after the same fixed propagation delay as forward-path
        # deliveries, from nondecreasing emission times, so they share the
        # link's monotone propagation lane.
        self._ack_lane = self.link.propagation_lane

        self.cross_delivered = 0
        # Random-loss schedule (section 5 extension): each entry drops the
        # next CCA packet departing the bottleneck at or after that time.
        self._pending_losses = sorted(float(t) for t in loss_times) if loss_times else []
        self.forced_losses = 0
        # Fault-injection hook: drops matching CCA packets before they reach
        # the gateway (used to reproduce specific loss patterns such as
        # "lose segment N and its first retransmission", Fig. 4c).
        self._drop_filter = drop_filter

    # ------------------------------------------------------------------ #
    # Wiring callbacks
    # ------------------------------------------------------------------ #

    def _send_from_source(self, packet: Packet) -> None:
        """Sender hand-off: the access link is infinitely fast (section 3.1)."""
        now = self.scheduler.now
        if self._drop_filter is not None and self._drop_filter(packet, now):
            self.forced_losses += 1
            self.monitor.on_ingress(packet, now, admitted=False)
            return
        admitted = self.queue.enqueue(packet, now)
        self.monitor.on_ingress(packet, now, admitted)

    def _inject_cross_traffic(self, packet: Packet, now: float) -> bool:
        admitted = self.queue.enqueue(packet, now)
        self.monitor.on_ingress(packet, now, admitted)
        return admitted

    def _deliver_to_sink(self, packet: Packet) -> None:
        now = self.scheduler.now
        if (
            packet.flow == CCA_FLOW
            and self._pending_losses
            and now >= self._pending_losses[0]
        ):
            self._pending_losses.pop(0)
            self.forced_losses += 1
            return
        self.monitor.on_egress(packet, now)
        if packet.flow == CCA_FLOW:
            self.receiver.on_segment(packet)
        else:
            self.cross_delivered += 1

    def _return_ack(self, ack: AckPacket) -> None:
        self._ack_lane.push(self.propagation_delay, self.sender.on_ack, ack)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Install all initial events."""
        if isinstance(self.link, TraceDrivenLink):
            self.link.start(horizon=self.duration)
        else:
            self.link.start()
        if self.cross_traffic is not None:
            self.cross_traffic.start(horizon=self.duration)
        self.sender.start()

    def run(self, max_events: Optional[int] = None) -> int:
        self.start()
        executed = self.scheduler.run(until=self.duration, max_events=max_events)
        # Propagate queue depth samples to the monitor for analysis
        # (``depth_samples`` materialises a fresh list of pairs).
        self.monitor.queue_depth = self.queue.depth_samples
        return executed
