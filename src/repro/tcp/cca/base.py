"""Congestion-control algorithm interface.

The sender drives a :class:`CongestionControl` instance through a small set
of callbacks (ACK processing, loss, RTO) and reads back two knobs: the
congestion window (in segments) and an optional pacing rate (segments per
second).  Window-based algorithms (Reno, CUBIC) leave the pacing rate unset;
rate-based algorithms (BBR) set both.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..rate_sampler import RateSample


@dataclass(slots=True)
class AckEvent:
    """Information handed to the CCA for every processed ACK."""

    now: float
    newly_acked: int            #: segments newly covered by the cumulative ACK (including
                                #: previously-SACKed ones) — what window growth sees
    newly_sacked: int           #: segments newly selectively acknowledged
    newly_delivered: int        #: segments delivered for the first time (rate-sampling count)
    cumulative_ack: int
    delivered: int              #: connection-lifetime delivered segment count
    in_flight: int              #: pipe after this ACK was applied
    rate_sample: Optional[RateSample]
    rtt: Optional[float]        #: RTT sample from this ACK (None if unavailable)
    in_recovery: bool
    in_rto_recovery: bool


class CongestionControl(abc.ABC):
    """Abstract congestion-control algorithm."""

    name: str = "base"

    def __init__(self) -> None:
        self._sender: Optional[Any] = None

    def attach(self, sender: Any) -> None:
        """Bind the algorithm to the sender that owns it."""
        self._sender = sender

    @property
    def sender(self) -> Any:
        return self._sender

    # ------------------------------------------------------------------ #
    # Event callbacks
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def on_ack(self, event: AckEvent) -> None:
        """Process an acknowledgement (cumulative and/or selective)."""

    def on_loss(self, now: float, in_flight: int) -> None:
        """Called once when the sender enters fast-recovery."""

    def on_recovery_exit(self, now: float) -> None:
        """Called when the sender leaves fast-recovery or RTO recovery."""

    def on_rto(self, now: float, in_flight: int) -> None:
        """Called when the retransmission timer expires."""

    # ------------------------------------------------------------------ #
    # Control outputs
    # ------------------------------------------------------------------ #

    @property
    @abc.abstractmethod
    def cwnd(self) -> float:
        """Congestion window in segments."""

    @property
    def pacing_rate(self) -> Optional[float]:
        """Pacing rate in segments per second (None = no pacing)."""
        return None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def diagnostics(self) -> Dict[str, Any]:
        """Algorithm-specific diagnostic counters for analysis and tests."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(cwnd={self.cwnd:.1f})"
