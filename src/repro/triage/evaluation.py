"""Batched, cache-aware evaluation shared by the triage engines.

Triage generates large batches of *candidate* evaluations — reduced traces
from the minimizer, perturbed configurations from the robustness validator,
per-CCA runs from the differential comparator.  :class:`BatchEvaluator`
pushes every batch through one :class:`~repro.exec.EvaluationBackend` (so
triage parallelizes exactly like the GA) and resolves repeats through a
:class:`~repro.exec.TraceCache` with the same coalescing semantics as the
fuzzer (:func:`~repro.exec.evaluate_coalesced`).

:class:`TraceScorer` is the narrow interface the minimizer consumes: a batch
of traces in, one fitness per trace out, with the ``(CCA, simulation config,
score function)`` context fixed.  Tests substitute a cheap structural scorer
here to exercise minimization logic without the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..exec.backend import EvaluationBackend, SerialBackend
from ..exec.batch import evaluate_coalesced
from ..exec.cache import TraceCache, cca_identity, make_cache_key
from ..exec.workers import EvaluationJob, EvaluationOutcome
from ..netsim.simulation import CcaFactory, SimulationConfig
from ..scoring.base import ScoreFunction
from ..traces.trace import PacketTrace


class BatchEvaluator:
    """Evaluates job batches through a shared backend and optional cache.

    The backend is caller-owned (never closed here), so one pool can serve a
    whole triage session — minimization rounds, the perturbation matrix and
    the differential sweep all reuse the same workers, and with a shared
    campaign cache a corpus triage never re-simulates what the fuzzing runs
    already scored.
    """

    def __init__(
        self,
        backend: Optional[EvaluationBackend] = None,
        cache: Optional[TraceCache] = None,
    ) -> None:
        self.backend = backend or SerialBackend()
        self.cache = cache
        self.simulations = 0
        self.cache_hits = 0
        # cca_identity needs a constructed instance; memoize per factory
        # object so a triage session builds each CCA exactly once for keying.
        self._cca_keys: Dict[int, str] = {}
        self._cca_key_owners: List[CcaFactory] = []  # keeps id() keys alive
        self._sim_fingerprints: Dict[int, str] = {}
        self._sim_fingerprint_owners: List[SimulationConfig] = []
        self._score_fingerprints: Dict[int, str] = {}
        self._score_fingerprint_owners: List[ScoreFunction] = []

    def _cca_key(self, factory: CcaFactory) -> str:
        key = self._cca_keys.get(id(factory))
        if key is None:
            key = cca_identity(factory())
            self._cca_keys[id(factory)] = key
            self._cca_key_owners.append(factory)
        return key

    def _sim_fingerprint(self, config: SimulationConfig) -> str:
        fingerprint = self._sim_fingerprints.get(id(config))
        if fingerprint is None:
            fingerprint = config.fingerprint()
            self._sim_fingerprints[id(config)] = fingerprint
            self._sim_fingerprint_owners.append(config)
        return fingerprint

    def _score_fingerprint(self, score_function: ScoreFunction) -> str:
        fingerprint = self._score_fingerprints.get(id(score_function))
        if fingerprint is None:
            fingerprint = score_function.fingerprint()
            self._score_fingerprints[id(score_function)] = fingerprint
            self._score_fingerprint_owners.append(score_function)
        return fingerprint

    def evaluate(self, jobs: Sequence[EvaluationJob]) -> List[EvaluationOutcome]:
        """Evaluate jobs in input order, serving repeats from the cache."""
        if not jobs:
            return []
        keys = None
        if self.cache is not None:
            keys = [
                make_cache_key(
                    job.trace.fingerprint(),
                    self._cca_key(job.cca_factory),
                    self._sim_fingerprint(job.sim_config),
                    self._score_fingerprint(job.score_function),
                )
                for job in jobs
            ]
        outcomes, simulations, hits = evaluate_coalesced(
            list(jobs), keys, self.backend.evaluate_batch, self.cache
        )
        self.simulations += simulations
        self.cache_hits += hits
        return outcomes

    def stats(self) -> Dict[str, int]:
        return {"simulations": self.simulations, "cache_hits": self.cache_hits}


class TraceScorer:
    """Scores trace batches in one fixed (CCA, sim config, objective) context.

    This is the full interface the minimizer needs; anything with a matching
    ``scores`` method (e.g. a cheap structural scorer in tests) can stand in.
    """

    def __init__(
        self,
        cca_factory: CcaFactory,
        sim_config: SimulationConfig,
        score_function: ScoreFunction,
        evaluator: Optional[BatchEvaluator] = None,
    ) -> None:
        self.cca_factory = cca_factory
        self.sim_config = sim_config
        self.score_function = score_function
        self.evaluator = evaluator or BatchEvaluator()

    def outcomes(self, traces: Sequence[PacketTrace]) -> List[EvaluationOutcome]:
        jobs = [
            EvaluationJob(self.cca_factory, self.sim_config, trace, self.score_function)
            for trace in traces
        ]
        return self.evaluator.evaluate(jobs)

    def scores(self, traces: Sequence[PacketTrace]) -> List[float]:
        """One fitness value per trace (higher = worse CCA = better attack)."""
        return [score.total for score, _ in self.outcomes(traces)]
