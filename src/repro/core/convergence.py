"""Stopping criteria for the genetic search."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class ConvergenceCriterion:
    """Decides when the genetic loop should stop.

    The loop stops when any of the enabled conditions holds:

    * ``max_generations`` reached,
    * best fitness has not improved by more than ``min_improvement`` for
      ``patience`` consecutive generations,
    * best fitness reached ``target_fitness``.
    """

    max_generations: int = 50
    patience: Optional[int] = None
    min_improvement: float = 1e-6
    target_fitness: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_generations <= 0:
            raise ValueError("max_generations must be positive")
        self._best: Optional[float] = None
        self._stale_generations = 0

    def update(self, generation: int, best_fitness: float) -> bool:
        """Record this generation's best fitness; return True when converged."""
        if self.target_fitness is not None and best_fitness >= self.target_fitness:
            return True
        if self._best is None or best_fitness > self._best + self.min_improvement:
            self._best = max(best_fitness, self._best if self._best is not None else best_fitness)
            self._stale_generations = 0
        else:
            self._stale_generations += 1
        if self.patience is not None and self._stale_generations >= self.patience:
            return True
        return generation + 1 >= self.max_generations

    @property
    def stale_generations(self) -> int:
        return self._stale_generations

    # ------------------------------------------------------------------ #
    # Checkpoint serialisation
    # ------------------------------------------------------------------ #

    def state_dict(self) -> Dict[str, object]:
        """Mutable progress state (the configuration lives in the fields)."""
        return {"best": self._best, "stale_generations": self._stale_generations}

    def load_state(self, state: Dict[str, object]) -> None:
        best = state["best"]
        self._best = float(best) if best is not None else None  # type: ignore[arg-type]
        self._stale_generations = int(state["stale_generations"])  # type: ignore[arg-type]
