"""Trace validation and rate-variation metrics.

The DIST_PACKETS constraints are generative (they hold at every recursive
split), so they cannot be checked exactly after the fact.  These utilities
provide the observable consequences that tests and the realism analysis rely
on: windowed-rate variation bounds, burstiness measures and structural
validity checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .trace import LinkTrace, PacketTrace, TrafficTrace


@dataclass
class TraceValidationError(Exception):
    """Raised when a trace violates a structural invariant."""

    message: str

    def __str__(self) -> str:
        return self.message


def validate_trace(trace: PacketTrace) -> None:
    """Check structural invariants: sorted, in range, within packet budget."""
    timestamps = trace.timestamps
    if any(t < 0.0 or t > trace.duration for t in timestamps):
        raise TraceValidationError(
            f"timestamps must lie within [0, {trace.duration}]"
        )
    if any(b < a for a, b in zip(timestamps, timestamps[1:])):
        raise TraceValidationError("timestamps must be sorted")
    if isinstance(trace, TrafficTrace) and trace.packet_count > trace.max_packets:
        raise TraceValidationError(
            f"traffic trace exceeds its packet budget "
            f"({trace.packet_count} > {trace.max_packets})"
        )


def is_valid_trace(trace: PacketTrace) -> bool:
    """Boolean form of :func:`validate_trace`."""
    try:
        validate_trace(trace)
    except TraceValidationError:
        return False
    return True


def windowed_rate_extremes(
    trace: PacketTrace, window: float
) -> Tuple[float, float, float]:
    """(min, mean, max) windowed rate in packets/second for the given window."""
    counts = [count for _, count in trace.windowed_counts(window)]
    if not counts:
        return (0.0, 0.0, 0.0)
    rates = [c / window for c in counts]
    return (min(rates), sum(rates) / len(rates), max(rates))


def max_rate_deviation(trace: PacketTrace, window: float) -> float:
    """Largest multiplicative deviation of windowed rate from the trace average.

    A value of 2.0 means some window ran at twice (or half) the average rate.
    Returns ``inf`` when some window is empty while the average is non-zero.
    """
    avg = trace.average_rate_pps
    if avg == 0:
        return 1.0
    low, _, high = windowed_rate_extremes(trace, window)
    over = high / avg if avg > 0 else float("inf")
    under = avg / low if low > 0 else float("inf")
    return max(over, under)


def burstiness_index(trace: PacketTrace, window: float = 0.05) -> float:
    """Coefficient of variation of windowed packet counts (0 = perfectly smooth)."""
    counts = [count for _, count in trace.windowed_counts(window)]
    if not counts:
        return 0.0
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 0.0
    variance = sum((c - mean) ** 2 for c in counts) / len(counts)
    return (variance ** 0.5) / mean


def longest_silence(trace: PacketTrace) -> float:
    """Longest gap (seconds) with no packets, including the leading/trailing gap."""
    if trace.packet_count == 0:
        return trace.duration
    gaps = [trace.timestamps[0]]
    gaps.extend(b - a for a, b in zip(trace.timestamps, trace.timestamps[1:]))
    gaps.append(trace.duration - trace.timestamps[-1])
    return max(gaps)


def check_link_invariants(
    original: LinkTrace,
    evolved: LinkTrace,
    window: Optional[float] = None,
) -> List[str]:
    """Check the link-fuzzing invariants the GA must preserve across generations.

    Returns a list of human-readable violations (empty when all hold).
    """
    violations: List[str] = []
    if evolved.packet_count != original.packet_count:
        violations.append(
            f"total packet count changed: {original.packet_count} -> {evolved.packet_count}"
        )
    if abs(evolved.duration - original.duration) > 1e-9:
        violations.append("trace duration changed")
    if not is_valid_trace(evolved):
        violations.append("evolved trace is structurally invalid")
    if window is not None:
        original_dev = max_rate_deviation(original, window)
        evolved_dev = max_rate_deviation(evolved, window)
        # Allow some slack: the generative constraint is recursive, so windowed
        # deviation is only an approximate invariant.
        if evolved_dev > max(4.0, 2.0 * original_dev):
            violations.append(
                f"windowed rate deviation grew from {original_dev:.2f} to {evolved_dev:.2f}"
            )
    return violations
