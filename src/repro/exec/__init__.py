"""Parallel + memoized trace evaluation.

This subsystem decouples *what* the GA evaluates (an :class:`EvaluationJob`)
from *how* batches are executed (an :class:`EvaluationBackend`) and *whether*
an evaluation needs to run at all (a :class:`TraceCache`).  The fuzzer batches
every unevaluated individual across all islands each generation and hands the
cache misses to the configured backend.
"""

from .backend import (
    BACKENDS,
    EvaluationBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    create_backend,
)
from .batch import evaluate_coalesced
from .cache import OUTCOME_SCHEMA, CacheKey, TraceCache, cca_identity, make_cache_key
from .workers import EvaluationJob, EvaluationOutcome, evaluate_job, simulate_packet_trace

__all__ = [
    "BACKENDS",
    "CacheKey",
    "EvaluationBackend",
    "EvaluationJob",
    "EvaluationOutcome",
    "OUTCOME_SCHEMA",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadBackend",
    "TraceCache",
    "cca_identity",
    "create_backend",
    "evaluate_coalesced",
    "make_cache_key",
    "evaluate_job",
    "simulate_packet_trace",
]
