"""Unit tests for BBR's estimators, state machine and the RTO-interaction bug hooks."""

from __future__ import annotations

import pytest

from repro.tcp.cca.base import AckEvent
from repro.tcp.cca.bbr import Bbr
from repro.tcp.rate_sampler import RateSample


def rate_sample(
    rate: float,
    prior_delivered: int,
    delivered: int = 2,
    rtt: float = 0.04,
    is_retransmit: bool = False,
    ack_time: float = 0.0,
) -> RateSample:
    return RateSample(
        delivered=delivered,
        prior_delivered=prior_delivered,
        interval=delivered / rate if rate > 0 else 1.0,
        delivery_rate=rate,
        rtt=rtt,
        is_retransmit=is_retransmit,
        ack_time=ack_time,
    )


def ack_event(
    now: float,
    delivered: int,
    sample: RateSample,
    in_flight: int = 20,
    newly_delivered: int = 2,
    in_recovery: bool = False,
) -> AckEvent:
    return AckEvent(
        now=now,
        newly_acked=newly_delivered,
        newly_sacked=0,
        newly_delivered=newly_delivered,
        cumulative_ack=delivered,
        delivered=delivered,
        in_flight=in_flight,
        rate_sample=sample,
        rtt=sample.rtt,
        in_recovery=in_recovery,
        in_rto_recovery=in_recovery,
    )


def feed_rounds(bbr: Bbr, rate: float, rounds: int, start_time: float = 0.0, start_delivered: int = 0):
    """Feed ``rounds`` probing rounds of rate samples at ``rate`` packets/s."""
    delivered = start_delivered
    now = start_time
    for _ in range(rounds):
        prior = delivered
        delivered += 10
        now += 0.04
        bbr.on_ack(ack_event(now, delivered, rate_sample(rate, prior, rtt=0.04)))
    return now, delivered


class TestBandwidthFilter:
    def test_estimate_tracks_max_of_recent_rounds(self):
        bbr = Bbr()
        feed_rounds(bbr, rate=1000.0, rounds=5)
        assert bbr.btlbw == pytest.approx(1000.0)

    def test_old_samples_expire_after_filter_window(self):
        bbr = Bbr()
        now, delivered = feed_rounds(bbr, rate=1000.0, rounds=3)
        feed_rounds(bbr, rate=100.0, rounds=Bbr.BTLBW_FILTER_ROUNDS + 2, start_time=now, start_delivered=delivered)
        assert bbr.btlbw == pytest.approx(100.0)

    def test_higher_sample_immediately_raises_estimate(self):
        bbr = Bbr()
        feed_rounds(bbr, rate=500.0, rounds=3)
        now, delivered = feed_rounds(bbr, rate=1200.0, rounds=1, start_time=0.2, start_delivered=30)
        assert bbr.btlbw == pytest.approx(1200.0)


class TestRoundAccounting:
    def test_round_advances_when_prior_delivered_reaches_marker(self):
        bbr = Bbr()
        feed_rounds(bbr, rate=1000.0, rounds=4)
        assert bbr.round_count == 4

    def test_retransmit_anchored_round_end_counted_as_premature(self):
        bbr = Bbr()
        now, delivered = feed_rounds(bbr, rate=1000.0, rounds=3)
        sample = rate_sample(50.0, prior_delivered=delivered, is_retransmit=True)
        bbr.on_ack(ack_event(now + 0.04, delivered + 1, sample, newly_delivered=1))
        assert bbr.premature_round_ends == 1

    def test_rounds_do_not_advance_without_reaching_marker(self):
        bbr = Bbr()
        bbr.on_ack(ack_event(0.04, 10, rate_sample(1000.0, prior_delivered=0)))
        rounds_after_first = bbr.round_count
        # prior_delivered below the marker: still the same round.
        bbr.on_ack(ack_event(0.05, 12, rate_sample(1000.0, prior_delivered=5)))
        assert bbr.round_count == rounds_after_first


class TestStateMachine:
    def test_startup_exits_to_drain_then_probe_bw_when_bandwidth_plateaus(self):
        bbr = Bbr()
        now, delivered = feed_rounds(bbr, rate=1000.0, rounds=3)
        # Three rounds without 25 % growth => pipe considered full.
        now, delivered = feed_rounds(bbr, rate=1010.0, rounds=4, start_time=now, start_delivered=delivered)
        assert bbr.filled_pipe
        # With a small in-flight the state machine proceeds to PROBE_BW.
        bbr.on_ack(ack_event(now + 0.04, delivered + 2, rate_sample(1010.0, delivered), in_flight=5))
        assert bbr.state in (Bbr.DRAIN, Bbr.PROBE_BW)

    def test_startup_gain_is_high(self):
        bbr = Bbr()
        assert bbr.state == Bbr.STARTUP
        assert bbr.pacing_gain == pytest.approx(Bbr.HIGH_GAIN)

    def test_probe_bw_cycles_through_gain_values(self):
        bbr = Bbr()
        now, delivered = feed_rounds(bbr, rate=1000.0, rounds=8)
        seen_gains = set()
        for _ in range(30):
            prior = delivered
            delivered += 10
            now += 0.05
            bbr.on_ack(ack_event(now, delivered, rate_sample(1000.0, prior), in_flight=10))
            if bbr.state == Bbr.PROBE_BW:
                seen_gains.add(bbr.pacing_gain)
        assert 1.25 in seen_gains
        assert 0.75 in seen_gains

    def test_cwnd_targets_two_bdp_in_probe_bw(self):
        bbr = Bbr()
        now, delivered = feed_rounds(bbr, rate=1000.0, rounds=20)
        # BDP = 1000 pkt/s * 0.04 s = 40 segments; cwnd gain 2 => ~80.
        assert bbr.bdp == pytest.approx(40.0, rel=0.1)
        assert bbr.cwnd <= 2.5 * bbr.bdp + 1

    def test_min_cwnd_floor(self):
        bbr = Bbr()
        assert bbr.cwnd >= Bbr.MIN_CWND


class TestPacing:
    def test_pacing_rate_follows_gain_times_bandwidth(self):
        bbr = Bbr()
        feed_rounds(bbr, rate=1000.0, rounds=5)
        assert bbr.pacing_rate == pytest.approx(bbr.pacing_gain * 1000.0, rel=0.01)

    def test_pacing_floor_prevents_deadlock(self):
        bbr = Bbr(min_pacing_rate=0.5)
        assert bbr.pacing_rate >= 0.5


class TestRtoBehaviour:
    def test_default_rto_collapses_window_and_enters_loss_recovery(self):
        bbr = Bbr()
        feed_rounds(bbr, rate=1000.0, rounds=5)
        bbr.on_rto(now=1.0, in_flight=40)
        assert bbr.in_loss_recovery
        assert bbr.cwnd == pytest.approx(Bbr.MIN_CWND)
        assert bbr.state != Bbr.PROBE_RTT

    def test_fix_enters_probe_rtt_on_rto(self):
        """The paper's mitigation: ProbeRTT on RTO caps the window at 4 segments."""
        bbr = Bbr(probe_rtt_on_rto=True)
        feed_rounds(bbr, rate=1000.0, rounds=5)
        bbr.on_rto(now=1.0, in_flight=40)
        assert bbr.state == Bbr.PROBE_RTT
        assert bbr.cwnd == pytest.approx(Bbr.MIN_CWND)

    def test_default_packet_conservation_grows_window_with_acks(self):
        """Default BBR rebuilds its window from returning ACKs after an RTO,
        which is what lets it race ahead of in-flight SACKs and retransmit
        spuriously (section 4.1)."""
        bbr = Bbr()
        now, delivered = feed_rounds(bbr, rate=1000.0, rounds=5)
        bbr.on_rto(now=now, in_flight=40)
        bbr.on_ack(
            ack_event(now + 0.01, delivered + 20, rate_sample(1000.0, delivered),
                      in_flight=10, newly_delivered=20, in_recovery=True)
        )
        assert bbr.cwnd >= 30

    def test_fix_keeps_window_pinned_during_probe_rtt(self):
        bbr = Bbr(probe_rtt_on_rto=True)
        now, delivered = feed_rounds(bbr, rate=1000.0, rounds=5)
        bbr.on_rto(now=now, in_flight=40)
        bbr.on_ack(
            ack_event(now + 0.01, delivered + 20, rate_sample(1000.0, delivered),
                      in_flight=10, newly_delivered=20, in_recovery=True)
        )
        assert bbr.cwnd == pytest.approx(Bbr.MIN_CWND)

    def test_recovery_exit_restores_target_window(self):
        bbr = Bbr()
        now, delivered = feed_rounds(bbr, rate=1000.0, rounds=5)
        bbr.on_rto(now=now, in_flight=40)
        bbr.on_recovery_exit(now=now + 0.5)
        assert not bbr.in_loss_recovery
        assert bbr.cwnd > Bbr.MIN_CWND


class TestRtPropFilter:
    def test_min_rtt_tracked(self):
        bbr = Bbr()
        bbr.on_ack(ack_event(0.04, 2, rate_sample(1000.0, 0, rtt=0.05)))
        bbr.on_ack(ack_event(0.08, 4, rate_sample(1000.0, 2, rtt=0.04)))
        bbr.on_ack(ack_event(0.12, 6, rate_sample(1000.0, 4, rtt=0.06)))
        assert bbr.rtprop == pytest.approx(0.04)

    def test_probe_rtt_entered_when_estimate_stale(self):
        bbr = Bbr()
        bbr.on_ack(ack_event(0.04, 2, rate_sample(1000.0, 0, rtt=0.04)))
        # Keep feeding higher RTTs for longer than the 10 s filter window.
        now, delivered = 0.04, 2
        while now < 11.0:
            prior = delivered
            delivered += 2
            now += 0.5
            bbr.on_ack(ack_event(now, delivered, rate_sample(1000.0, prior, rtt=0.08)))
        assert Bbr.PROBE_RTT in {state for _, state in bbr.state_history}
