"""Ablation benchmarks for two design choices the paper calls out.

1. Scoring aggregation (section 3.4): the low-utilisation score averages the
   *worst 20 %* of throughput windows instead of the whole run.  The paper
   argues this avoids favouring traces that only hurt the flow early.  The
   ablation compares the two aggregations on an early-burst trace versus a
   late-burst trace.

2. Trace annealing (section 3.2): Gaussian smoothing between generations
   makes link traces easier to read without destroying the packet budget.
   The ablation measures how much smoothing reduces short-window burstiness
   and confirms the fuzzing invariants survive.
"""

from __future__ import annotations

from conftest import print_rows, run_once

from repro.core import anneal_link_trace
from repro.netsim import SimulationConfig, run_simulation
from repro.scoring import LowUtilizationScore, WholeRunThroughputScore
from repro.tcp import Reno
from repro.traces import LinkTraceGenerator, TrafficTrace, burstiness_index

DURATION = 4.0


def run_scoring_ablation():
    config = SimulationConfig(duration=DURATION)
    early_burst = TrafficTrace(
        timestamps=[0.5 + i * 0.001 for i in range(400)], duration=DURATION, max_packets=400
    )
    late_burst = TrafficTrace(
        timestamps=[3.0 + i * 0.001 for i in range(400)], duration=DURATION, max_packets=400
    )
    early_result = run_simulation(Reno, config, cross_traffic_times=early_burst.timestamps)
    late_result = run_simulation(Reno, config, cross_traffic_times=late_burst.timestamps)
    return early_result, late_result


def test_ablation_bottom_windows_vs_whole_run(benchmark):
    early_result, late_result = run_once(benchmark, run_scoring_ablation)

    bottom = LowUtilizationScore(window=0.25, bottom_fraction=0.2)
    whole = WholeRunThroughputScore()
    rows = [
        {
            "trace": "burst at t=0.5s",
            "bottom20_score": bottom(early_result),
            "whole_run_score": whole(early_result),
        },
        {
            "trace": "burst at t=3.0s",
            "bottom20_score": bottom(late_result),
            "whole_run_score": whole(late_result),
        },
    ]
    print_rows("Ablation: worst-20%-windows score vs whole-run throughput score", rows)

    # The worst-windows aggregation focuses on the damage a trace does where
    # it hits, so for any run it scores at least as adversarial as the
    # whole-run average (mathematically: mean of the worst windows <= overall
    # mean, hence its negation is >=), and both traces register real damage.
    for result in (early_result, late_result):
        assert bottom(result) >= whole(result) - 1e-9
    assert bottom(early_result) > -6.0


def run_annealing_ablation():
    generator = LinkTraceGenerator(duration=DURATION, average_rate_mbps=12.0, seed=13)
    traces = generator.generate_population(10)
    annealed = [anneal_link_trace(trace, sigma=4.0) for trace in traces]
    return traces, annealed


def test_ablation_annealing_smooths_but_preserves_budget(benchmark):
    traces, annealed = run_once(benchmark, run_annealing_ablation)

    raw_burstiness = [burstiness_index(t, 0.05) for t in traces]
    smooth_burstiness = [burstiness_index(t, 0.05) for t in annealed]
    rows = [
        {
            "variant": "raw DIST_PACKETS traces",
            "mean_burstiness_50ms": sum(raw_burstiness) / len(raw_burstiness),
        },
        {
            "variant": "after Gaussian annealing (sigma=4)",
            "mean_burstiness_50ms": sum(smooth_burstiness) / len(smooth_burstiness),
        },
    ]
    print_rows("Ablation: trace annealing", rows)

    assert sum(smooth_burstiness) < sum(raw_burstiness)
    assert all(a.packet_count == t.packet_count for a, t in zip(annealed, traces))
