"""Scoring functions: performance scores, trace scores and realism scoring."""

from .base import PerformanceScore, Score, ScoreFunction, TraceScore
from .objectives import OBJECTIVES, make_score_function
from .performance import (
    CompositeScore,
    HighDelayScore,
    HighLossScore,
    LowUtilizationScore,
    RetransmissionScore,
    StallScore,
    WholeRunThroughputScore,
)
from .realism import RealismReport, RealismScorer, default_reference_panel
from .trace_score import MinimalTrafficScore, NullTraceScore, SmoothnessScore
from .windowed import bottom_fraction_mean, percentile, top_fraction_mean, windowed_throughput_mbps

__all__ = [
    "CompositeScore",
    "HighDelayScore",
    "HighLossScore",
    "LowUtilizationScore",
    "MinimalTrafficScore",
    "NullTraceScore",
    "OBJECTIVES",
    "PerformanceScore",
    "RealismReport",
    "RealismScorer",
    "RetransmissionScore",
    "Score",
    "ScoreFunction",
    "SmoothnessScore",
    "StallScore",
    "TraceScore",
    "WholeRunThroughputScore",
    "bottom_fraction_mean",
    "default_reference_panel",
    "make_score_function",
    "percentile",
    "top_fraction_mean",
    "windowed_throughput_mbps",
]
