"""End-to-end tests for ``repro-campaign`` and the new satellite CLI flags."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CorpusStore
from repro.cli import campaign_main, fuzz_main, simulate_main

TINY_SPEC = {
    "name": "cli-test",
    "ccas": ["reno", "cubic"],
    "modes": ["traffic"],
    "objectives": ["throughput"],
    "conditions": [{"name": "base"}, {"name": "shallow", "queue_capacity": 20}],
    "budget": {"population_size": 4, "generations": 2, "duration": 1.0},
    "seed": 11,
}


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(TINY_SPEC))
    return path


class TestCampaignRun:
    def test_run_produces_corpus_and_report(self, spec_path, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        exit_code = campaign_main(
            ["run", "--spec", str(spec_path), "--corpus", str(corpus_dir)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "4 scenarios" in out
        assert "corpus:" in out
        assert (corpus_dir / "index.json").exists()
        assert (corpus_dir / "report.json").exists()
        report = json.loads((corpus_dir / "report.json").read_text())
        assert len(report["scenarios"]) == 4
        assert report["corpus"]["entries"] == len(CorpusStore(str(corpus_dir)))

    def test_run_twice_dedupes_into_same_corpus(self, spec_path, tmp_path, capsys):
        # A second run over the same corpus is seeded from the first run's
        # discoveries (the corpus feedback loop), so it may find *new* traces
        # — but anything it re-finds (builtins, carried-over seeds) must
        # dedupe into the existing entries rather than duplicate them.
        corpus_dir = tmp_path / "corpus"
        campaign_main(["run", "--spec", str(spec_path), "--corpus", str(corpus_dir)])
        first = CorpusStore(str(corpus_dir)).stats()
        campaign_main(["run", "--spec", str(spec_path), "--corpus", str(corpus_dir)])
        capsys.readouterr()
        store = CorpusStore(str(corpus_dir))
        second = store.stats()
        assert second["by_origin"]["builtin"] == first["by_origin"]["builtin"]
        assert any(entry.rediscoveries > 0 for entry in store.entries())

    def test_no_attacks_flag(self, spec_path, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        campaign_main(
            ["run", "--spec", str(spec_path), "--corpus", str(corpus_dir), "--no-attacks"]
        )
        capsys.readouterr()
        origins = {entry.origin for entry in CorpusStore(str(corpus_dir)).entries()}
        assert "builtin" not in origins

    def test_quiet_run_prints_only_the_report(self, spec_path, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        assert campaign_main(
            ["run", "--spec", str(spec_path), "--corpus", str(corpus_dir), "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "4 scenarios" in out          # the report itself still prints
        assert "generation " not in out      # progress is suppressed
        assert "campaign report written" not in out

    def test_no_telemetry_skips_metrics_files(self, spec_path, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        campaign_main(
            ["run", "--spec", str(spec_path), "--corpus", str(corpus_dir),
             "--no-telemetry"]
        )
        capsys.readouterr()
        assert not (corpus_dir / "metrics.jsonl").exists()
        assert not (corpus_dir / "run_manifest.json").exists()


class TestCampaignStatus:
    @pytest.fixture
    def corpus_dir(self, spec_path, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        campaign_main(["run", "--spec", str(spec_path), "--corpus", str(corpus_dir)])
        capsys.readouterr()
        return corpus_dir

    def test_status_renders_progress(self, corpus_dir, capsys):
        assert campaign_main(["status", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert "campaign 'cli-test' — COMPLETE" in out
        assert "scenarios: 4/4 complete" in out
        assert "cache hit rate" in out
        assert "reno/traffic/throughput/base" in out

    def test_status_json_round_trips(self, corpus_dir, capsys):
        assert campaign_main(["status", str(corpus_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["campaign"] == "cli-test"
        assert payload["state"] == "complete"
        assert payload["scenarios_total"] == 4

    def test_status_prometheus_export(self, corpus_dir, capsys):
        assert campaign_main(["status", str(corpus_dir), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_fuzzer_evaluations counter" in out

    def test_status_without_telemetry_is_an_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            campaign_main(["status", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "no campaign telemetry" in capsys.readouterr().err


class TestCampaignReplayAndReport:
    @pytest.fixture
    def corpus_dir(self, spec_path, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        campaign_main(["run", "--spec", str(spec_path), "--corpus", str(corpus_dir)])
        capsys.readouterr()
        return corpus_dir

    def test_replay_deterministic_and_writes_json(self, corpus_dir, tmp_path, capsys):
        out_path = tmp_path / "replay.json"
        assert campaign_main(
            ["replay", "--corpus", str(corpus_dir), "--cca", "bbr",
             "--output", str(out_path)]
        ) == 0
        first = json.loads(out_path.read_text())
        capsys.readouterr()
        assert campaign_main(
            ["replay", "--corpus", str(corpus_dir), "--cca", "bbr",
             "--output", str(out_path)]
        ) == 0
        second = json.loads(out_path.read_text())
        capsys.readouterr()
        assert first == second
        assert first["replay_cca"] == "bbr"
        assert first["entries"] == len(CorpusStore(str(corpus_dir)))

    def test_report_summarises_corpus_and_last_run(self, corpus_dir, capsys):
        assert campaign_main(["report", "--corpus", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert "last campaign: 'cli-test'" in out

    def test_replay_rejects_unknown_cca(self, corpus_dir, capsys):
        with pytest.raises(SystemExit):
            campaign_main(["replay", "--corpus", str(corpus_dir), "--cca", "nope"])
        capsys.readouterr()

    def test_replay_json_fingerprints_join_with_corpus_index(self, corpus_dir, tmp_path, capsys):
        out_path = tmp_path / "replay.json"
        campaign_main(
            ["replay", "--corpus", str(corpus_dir), "--cca", "reno", "--output", str(out_path)]
        )
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        store = CorpusStore(str(corpus_dir))
        for row in payload["rows"]:
            assert row["fingerprint"] in store
        for best in payload["best_by_objective"].values():
            assert best["fingerprint"] in store

    @pytest.mark.parametrize("command", ["replay", "report"])
    def test_missing_corpus_is_an_error_not_an_empty_corpus(self, command, tmp_path, capsys):
        missing = tmp_path / "no-such-corpus"
        argv = [command, "--corpus", str(missing)]
        if command == "replay":
            argv += ["--cca", "reno"]
        with pytest.raises(SystemExit) as excinfo:
            campaign_main(argv)
        assert excinfo.value.code == 2
        assert "no corpus at" in capsys.readouterr().err
        assert not missing.exists()


class TestFuzzOutputDir:
    def test_output_dir_dumps_top_k_with_metadata(self, tmp_path, capsys):
        out_dir = tmp_path / "found"
        exit_code = fuzz_main(
            [
                "--cca", "reno", "--mode", "traffic", "--population", "4",
                "--generations", "2", "--duration", "1.0", "--seed", "5",
                "--top", "3", "--output-dir", str(out_dir),
            ]
        )
        assert exit_code == 0
        assert "written to corpus" in capsys.readouterr().out
        store = CorpusStore(str(out_dir))
        assert 1 <= len(store) <= 3
        for entry in store.entries():
            assert entry.scenario_id == "cli/reno/traffic/throughput"
            assert entry.cca == "reno"
            assert entry.score is not None
            assert entry.condition["queue_capacity"] == 60

    def test_output_dir_feeds_campaign_replay(self, tmp_path, capsys):
        # The --output-dir dump IS a corpus: replayable as-is.
        out_dir = tmp_path / "found"
        fuzz_main(
            ["--cca", "reno", "--mode", "traffic", "--population", "4",
             "--generations", "2", "--duration", "1.0", "--output-dir", str(out_dir)]
        )
        capsys.readouterr()
        assert campaign_main(["replay", "--corpus", str(out_dir), "--cca", "cubic"]) == 0
        assert "replayed" in capsys.readouterr().out


class TestSimulateTraceAttackConflict:
    def test_trace_plus_attack_is_an_error(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        from repro.traces.trace import TrafficTrace

        trace_path.write_text(
            TrafficTrace(timestamps=[0.1], duration=1.0, max_packets=4).to_json()
        )
        with pytest.raises(SystemExit) as excinfo:
            simulate_main(
                ["--cca", "reno", "--duration", "1.0",
                 "--trace", str(trace_path), "--attack", "lowrate"]
            )
        assert excinfo.value.code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_trace_with_explicit_attack_none_is_fine(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        from repro.traces.trace import TrafficTrace

        trace_path.write_text(
            TrafficTrace(timestamps=[0.1], duration=1.0, max_packets=4).to_json()
        )
        assert simulate_main(
            ["--cca", "reno", "--duration", "1.0",
             "--trace", str(trace_path), "--attack", "none"]
        ) == 0
        capsys.readouterr()


class TestSharedRegistry:
    def test_cli_uses_shared_cca_registry(self):
        from repro.cli import _cca_factories
        from repro.tcp.cca import CCA_FACTORIES

        assert _cca_factories() == CCA_FACTORIES
        assert set(CCA_FACTORIES) == {"reno", "cubic", "cubic-ns3bug", "bbr", "bbr-fixed"}

    def test_cca_factory_lookup_errors(self):
        from repro.tcp.cca import cca_factory

        with pytest.raises(ValueError, match="unknown CCA"):
            cca_factory("vegas")
