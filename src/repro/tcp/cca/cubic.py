"""TCP CUBIC congestion control, with the NS3 slow-start bug reproducible.

CUBIC grows its window along a cubic curve anchored at the window size before
the last loss.  Slow start behaves like Reno.

Section 4.2 of the paper reports an NS3-specific implementation bug that
CC-Fuzz triggered: when a retransmission is itself lost, the connection falls
back to an RTO and slow start; the ACK for the second retransmission then
cumulatively acknowledges a large amount of data at once, and NS3's CUBIC
adds the full number of newly acknowledged segments to the window *without
clamping at ssthresh*.  The result is a near 1-RTO-sized burst and
catastrophic loss.  The Linux implementation clamps correctly.

``ns3_slow_start_bug=True`` reproduces the buggy behaviour;
``False`` (default) reproduces the correct Linux behaviour.
"""

from __future__ import annotations

from typing import Any, Dict

from .base import AckEvent, CongestionControl


class Cubic(CongestionControl):
    """CUBIC congestion control (RFC 8312 constants)."""

    name = "cubic"

    #: CUBIC scaling constant (segments / s^3).
    C = 0.4
    #: Multiplicative decrease factor.
    BETA = 0.7

    def __init__(
        self,
        initial_cwnd: float = 10.0,
        initial_ssthresh: float = float("inf"),
        min_cwnd: float = 1.0,
        ns3_slow_start_bug: bool = False,
        fast_convergence: bool = True,
        hystart: bool = True,
        hystart_min_delay_increase: float = 0.004,
        hystart_max_delay_increase: float = 0.016,
    ) -> None:
        super().__init__()
        self._cwnd = float(initial_cwnd)
        self.ssthresh = float(initial_ssthresh)
        self.min_cwnd = float(min_cwnd)
        self.ns3_slow_start_bug = ns3_slow_start_bug
        self.fast_convergence = fast_convergence
        #: HyStart (delay-increase variant), enabled by default as in both the
        #: Linux and NS3 CUBIC implementations: slow start exits as soon as the
        #: RTT rises noticeably above its observed minimum, avoiding the huge
        #: overshoot-and-timeout that blind doubling causes on shallow buffers.
        self.hystart = hystart
        self.hystart_min_delay_increase = hystart_min_delay_increase
        self.hystart_max_delay_increase = hystart_max_delay_increase
        self.hystart_min_samples = 8
        self._min_rtt: float = float("inf")
        self._round_min_rtt: float = float("inf")
        self._round_samples = 0
        self._round_end_time = 0.0
        self.hystart_exits = 0

        self.w_max = 0.0
        self._epoch_start: float = -1.0
        self._k = 0.0
        self._origin_point = 0.0
        self._w_tcp = 0.0
        self._in_recovery = False
        self._exited_via_rto = False

        self.loss_events = 0
        self.rto_events = 0
        #: Largest single-ACK window jump observed while in slow start; the
        #: NS3 bug manifests as a jump far larger than ssthresh allows.
        self.max_slow_start_jump = 0.0
        self._track_state(self.state)

    # ------------------------------------------------------------------ #
    # Window growth
    # ------------------------------------------------------------------ #

    def on_ack(self, event: AckEvent) -> None:
        if event.rtt is not None:
            self._min_rtt = min(self._min_rtt, event.rtt)
            if self.hystart and self._cwnd < self.ssthresh:
                self._hystart_check(event.now, event.rtt)
        acked = float(event.newly_acked)
        if acked <= 0 or self._in_recovery:
            self._track_state(self.state)
            return
        if self._cwnd < self.ssthresh:
            self._slow_start(acked)
        else:
            self._congestion_avoidance(event.now, acked, event.rtt)
        self._track_state(self.state)

    def _hystart_check(self, now: float, rtt: float) -> None:
        """HyStart delay-increase detection, evaluated on per-round minimum RTT.

        Using the round's *minimum* RTT over at least ``hystart_min_samples``
        samples makes the exit robust to delayed-ACK jitter, mirroring the
        Linux/NS3 implementations.
        """
        if self._min_rtt == float("inf"):
            return
        if now >= self._round_end_time:
            # Start a new measurement round lasting roughly one smoothed RTT.
            self._round_end_time = now + max(self._min_rtt, 1e-3)
            self._round_min_rtt = rtt
            self._round_samples = 1
            return
        self._round_min_rtt = min(self._round_min_rtt, rtt)
        self._round_samples += 1
        if self._round_samples < self.hystart_min_samples:
            return
        threshold = min(
            max(self._min_rtt / 8.0, self.hystart_min_delay_increase),
            self.hystart_max_delay_increase,
        )
        if self._round_min_rtt >= self._min_rtt + threshold:
            self.ssthresh = min(self.ssthresh, max(self._cwnd, 2.0))
            self.hystart_exits += 1

    def _slow_start(self, acked: float) -> None:
        before = self._cwnd
        if self.ns3_slow_start_bug:
            # NS3 bug: the newly acknowledged segment count is added wholesale,
            # with no clamp at ssthresh.  A large cumulative ACK after an RTO
            # therefore opens the window far past ssthresh in one step.
            self._cwnd += acked
        else:
            growth = min(acked, max(0.0, self.ssthresh - self._cwnd))
            self._cwnd += growth
            leftover = acked - growth
            if leftover > 0:
                self._cwnd += leftover / self._cwnd
        self.max_slow_start_jump = max(self.max_slow_start_jump, self._cwnd - before)

    def _congestion_avoidance(self, now: float, acked: float, rtt) -> None:
        if self._epoch_start < 0:
            self._epoch_start = now
            if self._cwnd < self.w_max:
                self._k = ((self.w_max - self._cwnd) / self.C) ** (1.0 / 3.0)
                self._origin_point = self.w_max
            else:
                self._k = 0.0
                self._origin_point = self._cwnd
            self._w_tcp = self._cwnd
        rtt_value = rtt if rtt else 0.04
        t = now - self._epoch_start + rtt_value
        target = self._origin_point + self.C * (t - self._k) ** 3
        if target > self._cwnd:
            # Approach the cubic target within roughly one RTT, never
            # overshooting it on a single (possibly very large) ACK.
            growth = (target - self._cwnd) / max(self._cwnd, 1.0) * acked
            self._cwnd += min(growth, target - self._cwnd)
        # TCP-friendly region (RFC 8312 section 4.2): never grow slower than an
        # AIMD flow with the same beta would.  The estimate is time-based, so a
        # single large cumulative ACK cannot inflate it.
        elapsed_rtts = t / max(rtt_value, 1e-3)
        w_est = self._w_tcp + 3.0 * (1.0 - self.BETA) / (1.0 + self.BETA) * elapsed_rtts
        if w_est > self._cwnd:
            self._cwnd = w_est

    # ------------------------------------------------------------------ #
    # Loss handling
    # ------------------------------------------------------------------ #

    def on_loss(self, now: float, in_flight: int) -> None:
        self.loss_events += 1
        if not self._in_recovery:
            self.recovery_entries += 1
        self._register_loss(max(float(in_flight), self._cwnd))
        self._cwnd = max(self.ssthresh, self.min_cwnd)
        self._in_recovery = True
        self._exited_via_rto = False
        self._track_state(self.state)

    def on_recovery_exit(self, now: float) -> None:
        if self._in_recovery:
            self.recovery_exits += 1
        self._in_recovery = False
        if self._exited_via_rto:
            # After an RTO the connection is in slow start from a one-segment
            # window (NS3/Linux behaviour); the window is *not* restored, which
            # is precisely why the first post-RTO cumulative ACK can be huge
            # when it reaches the slow-start increase function (section 4.2).
            self._exited_via_rto = False
            self._track_state(self.state)
            return
        self._cwnd = max(self.ssthresh, self.min_cwnd)
        self._track_state(self.state)

    def on_rto(self, now: float, in_flight: int) -> None:
        self.rto_events += 1
        self._register_loss(max(float(in_flight), self._cwnd))
        self._cwnd = self.min_cwnd
        self._in_recovery = False
        self._exited_via_rto = True
        self._track_state(self.state)

    def _register_loss(self, window_at_loss: float) -> None:
        if self.fast_convergence and window_at_loss < self.w_max:
            self.w_max = window_at_loss * (1.0 + self.BETA) / 2.0
        else:
            self.w_max = window_at_loss
        self.ssthresh = max(window_at_loss * self.BETA, 2.0)
        self._epoch_start = -1.0

    # ------------------------------------------------------------------ #
    # Control outputs
    # ------------------------------------------------------------------ #

    @property
    def cwnd(self) -> float:
        return max(self._cwnd, self.min_cwnd)

    @property
    def state(self) -> str:
        """Coarse state-machine phase (shared vocabulary with Reno)."""
        if self._in_recovery:
            return "recovery"
        if self._cwnd < self.ssthresh:
            return "slow_start"
        return "congestion_avoidance"

    def diagnostics(self) -> Dict[str, Any]:
        diag = super().diagnostics()
        diag.update(
            state=self.state,
            cwnd=self.cwnd,
            ssthresh=self.ssthresh,
            w_max=self.w_max,
            loss_events=self.loss_events,
            rto_events=self.rto_events,
            max_slow_start_jump=self.max_slow_start_jump,
            ns3_slow_start_bug=self.ns3_slow_start_bug,
            hystart_exits=self.hystart_exits,
        )
        return diag
