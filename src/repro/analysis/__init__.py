"""Analysis utilities: metrics, queueing analysis, stall timelines, reporting."""

from .metrics import FlowMetrics, compare_metrics, compute_metrics, goodput_mbps, longest_delivery_gap
from .queueing import (
    max_queue_depth,
    per_flow_delay_series,
    queue_depth_series,
    queueing_delay_series,
    standing_queue_estimate,
    time_above_delay,
)
from .reporting import (
    ascii_chart,
    format_campaign_summary,
    format_comparison,
    format_generation_progress,
    format_table,
    format_triage_report,
)
from .timeline import (
    BbrBugEvidence,
    StallPeriod,
    bandwidth_collapse_ratio,
    bbr_bug_evidence,
    describe_bug_timeline,
    extract_stall_periods,
)

__all__ = [
    "BbrBugEvidence",
    "FlowMetrics",
    "StallPeriod",
    "ascii_chart",
    "bandwidth_collapse_ratio",
    "bbr_bug_evidence",
    "compare_metrics",
    "compute_metrics",
    "describe_bug_timeline",
    "extract_stall_periods",
    "format_campaign_summary",
    "format_comparison",
    "format_generation_progress",
    "format_table",
    "format_triage_report",
    "goodput_mbps",
    "longest_delivery_gap",
    "max_queue_depth",
    "per_flow_delay_series",
    "queue_depth_series",
    "queueing_delay_series",
    "standing_queue_estimate",
    "time_above_delay",
]
