"""Result containers for a fuzzing run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..traces.trace import PacketTrace
from .population import Individual


@dataclass
class GenerationStats:
    """Summary of one generation (aggregated across islands).

    ``top_k_mean_fitness`` mirrors the paper's Fig. 4d, which plots the mean
    of the best 20 traces per generation.
    """

    generation: int
    best_fitness: float
    mean_fitness: float
    top_k_mean_fitness: float
    best_summary: Dict[str, Any] = field(default_factory=dict)
    evaluations: int = 0                   #: simulations actually run (cache misses)
    per_island_best: List[float] = field(default_factory=list)
    cache_hits: int = 0                    #: evaluations avoided by the trace cache
    behavior_cells: int = 0                #: cumulative archive cells this run opened

    def to_dict(self) -> Dict[str, Any]:
        return {
            "generation": self.generation,
            "best_fitness": self.best_fitness,
            "mean_fitness": self.mean_fitness,
            "top_k_mean_fitness": self.top_k_mean_fitness,
            "best_summary": dict(self.best_summary),
            "evaluations": self.evaluations,
            "per_island_best": list(self.per_island_best),
            "cache_hits": self.cache_hits,
            "behavior_cells": self.behavior_cells,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "GenerationStats":
        return cls(
            generation=int(payload["generation"]),
            best_fitness=float(payload["best_fitness"]),
            mean_fitness=float(payload["mean_fitness"]),
            top_k_mean_fitness=float(payload["top_k_mean_fitness"]),
            best_summary=dict(payload.get("best_summary", {})),
            evaluations=int(payload.get("evaluations", 0)),
            per_island_best=[float(v) for v in payload.get("per_island_best", [])],
            cache_hits=int(payload.get("cache_hits", 0)),
            behavior_cells=int(payload.get("behavior_cells", 0)),
        )


@dataclass
class FuzzResult:
    """Outcome of a complete fuzzing run."""

    mode: str
    cca_name: str
    best_individual: Individual
    final_population: List[Individual]
    generations: List[GenerationStats]
    total_evaluations: int                 #: simulator/evaluator executions (cache misses)
    converged_generation: int
    cache_hits: int = 0                    #: this run's evaluations served from the cache
    #: Cache-lifetime counters; spans multiple runs when a cache is shared.
    cache_stats: Dict[str, Any] = field(default_factory=dict)
    #: Fingerprints of the injected seed traces that made it into the initial
    #: population (corpus seeding provenance; empty for unseeded runs).
    seed_fingerprints: List[str] = field(default_factory=list)
    #: Guidance strategy the search ran under ("score"/"novelty"/"elites").
    guidance: str = "score"
    #: Behavior-archive cells this run discovered (new cells, not visits).
    behavior_cells: int = 0
    #: Snapshot of the archive's coverage statistics at the end of the run.
    coverage: Dict[str, Any] = field(default_factory=dict)
    #: The behavior archive itself (shared object when one was injected).
    archive: Optional[Any] = None

    @property
    def best_trace(self) -> PacketTrace:
        return self.best_individual.trace

    @property
    def best_fitness(self) -> float:
        return self.best_individual.fitness

    def top_individuals(self, count: int) -> List[Individual]:
        """Best ``count`` individuals of the final population."""
        ordered = sorted(self.final_population, key=lambda ind: ind.fitness, reverse=True)
        return ordered[:count]

    def fitness_trajectory(self) -> List[float]:
        """Best fitness per generation — the convergence curve."""
        return [stats.best_fitness for stats in self.generations]

    def top_k_trajectory(self) -> List[float]:
        """Mean fitness of the per-generation top-k — the Fig. 4d series."""
        return [stats.top_k_mean_fitness for stats in self.generations]

    def improved(self) -> bool:
        """Whether the search improved on the initial generation's best."""
        trajectory = self.fitness_trajectory()
        if len(trajectory) < 2:
            return False
        return trajectory[-1] > trajectory[0]

    def summary(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "cca": self.cca_name,
            "generations": len(self.generations),
            "total_evaluations": self.total_evaluations,
            "cache_hits": self.cache_hits,
            "best_fitness": self.best_fitness,
            "best_origin": self.best_individual.origin,
            "best_result": dict(self.best_individual.result_summary),
            "seed_traces": len(self.seed_fingerprints),
            "guidance": self.guidance,
            "behavior_cells": self.behavior_cells,
        }
