"""Tests for the genetic-algorithm core: selection, islands, annealing, convergence,
population bookkeeping and the CCFuzz loop (driven by a fast fake evaluator)."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    CCFuzz,
    ConvergenceCriterion,
    FuzzConfig,
    Individual,
    IslandModel,
    Population,
    RankSelection,
    anneal_link_trace,
    gaussian_kernel,
    pick_elites,
    smooth_timestamps,
)
from repro.scoring.base import Score
from repro.tcp.cca.reno import Reno
from repro.traces import LinkTrace, LinkTraceGenerator, TrafficTrace


def individual(fitness: float, seq: int = 0) -> Individual:
    ind = Individual(trace=TrafficTrace(timestamps=[0.1 * seq], duration=5.0, max_packets=10))
    ind.score = Score(total=fitness, performance=fitness)
    return ind


class TestPopulation:
    def test_best_and_sorting(self):
        population = Population([individual(1.0), individual(5.0), individual(3.0)])
        assert population.best().fitness == 5.0
        assert [ind.fitness for ind in population.sorted_by_fitness()] == [5.0, 3.0, 1.0]

    def test_unevaluated_tracking(self):
        fresh = Individual(trace=TrafficTrace(timestamps=[], duration=1.0, max_packets=5))
        population = Population([individual(1.0), fresh])
        assert population.unevaluated() == [fresh]
        assert fresh.fitness == float("-inf")

    def test_worst_indices(self):
        population = Population([individual(5.0), individual(1.0), individual(3.0)])
        assert population.worst_indices(2) == [1, 2]

    def test_mean_fitness(self):
        population = Population([individual(2.0), individual(4.0)])
        assert population.mean_fitness() == pytest.approx(3.0)

    def test_best_of_empty_population_raises(self):
        with pytest.raises(ValueError):
            Population().best()


class TestRankSelection:
    def test_better_ranked_selected_more_often(self):
        rng = random.Random(0)
        selection = RankSelection(rng)
        ranked = [individual(10.0), individual(5.0), individual(1.0)]
        counts = {0: 0, 1: 0, 2: 0}
        for _ in range(3000):
            chosen = selection.select_one(ranked)
            counts[ranked.index(chosen)] += 1
        assert counts[0] > counts[1] > counts[2]
        # 1/rank weights: rank 1 should get roughly 6/11 of the picks.
        assert counts[0] / 3000 == pytest.approx(6 / 11, abs=0.05)

    def test_pairs_prefer_distinct_parents(self):
        rng = random.Random(1)
        selection = RankSelection(rng)
        ranked = [individual(3.0), individual(2.0), individual(1.0)]
        pairs = selection.select_pairs(ranked, 50)
        assert sum(1 for a, b in pairs if a is b) < 10

    def test_select_from_empty_raises(self):
        selection = RankSelection(random.Random(0))
        with pytest.raises(ValueError):
            selection.select_one([])

    def test_pick_elites(self):
        ranked = [individual(3.0), individual(2.0), individual(1.0)]
        assert pick_elites(ranked, 2) == ranked[:2]
        with pytest.raises(ValueError):
            pick_elites(ranked, -1)


class TestIslandModel:
    def make_islands(self, count: int = 3, size: int = 4) -> IslandModel:
        islands = []
        fitness = 0.0
        for _ in range(count):
            members = []
            for _ in range(size):
                fitness += 1.0
                members.append(individual(fitness))
            islands.append(Population(members))
        return IslandModel(islands, migration_interval=5, migration_fraction=0.25)

    def test_migration_moves_best_to_next_island(self):
        model = self.make_islands()
        best_island_0 = model.islands[0].best().fitness
        moved = model.migrate(generation=4)
        assert moved == 3
        fitness_in_island_1 = [ind.fitness for ind in model.islands[1]]
        assert best_island_0 in fitness_in_island_1

    def test_migration_replaces_worst(self):
        model = self.make_islands()
        worst_before = min(ind.fitness for ind in model.islands[1])
        migrant_fitness = model.islands[0].best().fitness
        model.migrate(generation=4)
        fitness_after = [ind.fitness for ind in model.islands[1]]
        # The destination's previous worst member is gone, replaced by the
        # source island's best trace (which may itself be weaker or stronger).
        assert worst_before not in fitness_after
        assert migrant_fitness in fitness_after

    def test_should_migrate_respects_interval(self):
        model = self.make_islands()
        assert not model.should_migrate(generation=0)
        assert model.should_migrate(generation=4)
        assert model.should_migrate(generation=9)

    def test_single_island_never_migrates(self):
        model = IslandModel([Population([individual(1.0)])], migration_interval=1)
        assert not model.should_migrate(generation=0)

    def test_best_across_islands(self):
        model = self.make_islands()
        assert model.best().fitness == 12.0


class TestAnnealing:
    def test_gaussian_kernel_normalised(self):
        kernel = gaussian_kernel(sigma=2.0, radius=4)
        assert sum(kernel) == pytest.approx(1.0)
        assert kernel[4] == max(kernel)

    def test_invalid_kernel_parameters(self):
        with pytest.raises(ValueError):
            gaussian_kernel(sigma=0.0, radius=3)
        with pytest.raises(ValueError):
            gaussian_kernel(sigma=1.0, radius=-1)

    def test_smoothing_preserves_count_order_and_range(self):
        trace = LinkTraceGenerator(duration=5.0, seed=4).generate()
        smoothed = smooth_timestamps(trace.timestamps, sigma=3.0, duration=5.0)
        assert len(smoothed) == trace.packet_count
        assert smoothed == sorted(smoothed)
        assert all(0.0 <= t <= 5.0 for t in smoothed)

    def test_smoothing_reduces_burstiness(self):
        from repro.traces import burstiness_index

        trace = LinkTraceGenerator(duration=5.0, seed=5).generate()
        annealed = anneal_link_trace(trace, sigma=5.0)
        assert burstiness_index(annealed, 0.05) <= burstiness_index(trace, 0.05)

    def test_annealed_trace_keeps_packet_budget(self):
        trace = LinkTraceGenerator(duration=5.0, seed=6).generate()
        annealed = anneal_link_trace(trace, sigma=2.0)
        assert annealed.packet_count == trace.packet_count
        assert isinstance(annealed, LinkTrace)

    def test_empty_trace_smoothing(self):
        assert smooth_timestamps([], sigma=1.0, duration=1.0) == []


class TestConvergence:
    def test_stops_at_max_generations(self):
        criterion = ConvergenceCriterion(max_generations=3)
        assert not criterion.update(0, 1.0)
        assert not criterion.update(1, 2.0)
        assert criterion.update(2, 3.0)

    def test_patience_triggers_on_plateau(self):
        criterion = ConvergenceCriterion(max_generations=100, patience=2)
        assert not criterion.update(0, 1.0)
        assert not criterion.update(1, 1.0)
        assert criterion.update(2, 1.0)

    def test_improvement_resets_patience(self):
        criterion = ConvergenceCriterion(max_generations=100, patience=2)
        criterion.update(0, 1.0)
        criterion.update(1, 1.0)
        assert not criterion.update(2, 2.0)
        assert criterion.stale_generations == 0

    def test_target_fitness_stops_immediately(self):
        criterion = ConvergenceCriterion(max_generations=100, target_fitness=5.0)
        assert criterion.update(0, 6.0)

    def test_invalid_max_generations(self):
        with pytest.raises(ValueError):
            ConvergenceCriterion(max_generations=0)


class FakeEvaluator:
    """Deterministic fitness: prefers traffic traces with many early packets.

    Gives the GA a smooth landscape so tests can assert real improvement
    without running the simulator.
    """

    def __init__(self):
        self.calls = 0

    def __call__(self, trace):
        self.calls += 1
        early = sum(1 for t in trace.timestamps if t < trace.duration / 2)
        fitness = float(early)
        return Score(total=fitness, performance=fitness), {"early_packets": early}


class TestCCFuzzLoop:
    def make_fuzzer(self, **overrides):
        params = dict(
            mode="traffic",
            population_size=8,
            generations=6,
            duration=2.0,
            max_traffic_packets=60,
            seed=7,
        )
        params.update(overrides)
        config = FuzzConfig(**params)
        evaluator = FakeEvaluator()
        return CCFuzz(Reno, config=config, evaluator=evaluator), evaluator

    def test_fitness_improves_over_generations(self):
        fuzzer, _ = self.make_fuzzer()
        result = fuzzer.run()
        assert result.best_fitness >= result.generations[0].best_fitness
        assert result.improved() or result.best_fitness == result.generations[0].best_fitness

    def test_population_size_maintained(self):
        fuzzer, _ = self.make_fuzzer()
        result = fuzzer.run()
        assert len(result.final_population) == fuzzer.config.total_population

    def test_elite_preserved_across_generations(self):
        fuzzer, _ = self.make_fuzzer(k_elite=2)
        result = fuzzer.run()
        best_per_generation = result.fitness_trajectory()
        # With elitism the best fitness never decreases.
        assert all(b >= a - 1e-9 for a, b in zip(best_per_generation, best_per_generation[1:]))

    def test_evaluations_counted(self):
        fuzzer, evaluator = self.make_fuzzer(generations=3)
        result = fuzzer.run()
        assert result.total_evaluations == evaluator.calls
        assert result.total_evaluations >= fuzzer.config.population_size

    def test_elites_not_reevaluated(self):
        fuzzer, evaluator = self.make_fuzzer(generations=3, k_elite=2)
        result = fuzzer.run()
        expected_max = fuzzer.config.population_size + 2 * (
            fuzzer.config.population_size - fuzzer.config.k_elite
        )
        assert evaluator.calls <= expected_max

    def test_deterministic_given_seed(self):
        first, _ = self.make_fuzzer(seed=11)
        second, _ = self.make_fuzzer(seed=11)
        assert first.run().best_fitness == second.run().best_fitness

    def test_seed_traces_join_initial_population(self):
        seed_trace = TrafficTrace(
            timestamps=[0.01 * i for i in range(50)], duration=2.0, max_packets=60
        )
        fuzzer, _ = self.make_fuzzer()
        fuzzer.seed_traces = [seed_trace]
        result = fuzzer.run()
        assert any(ind.origin in ("seed", "elite") for ind in result.final_population)
        # The seed trace is already near-optimal for the fake objective.
        assert result.best_fitness >= 49

    def test_islands_and_migration(self):
        fuzzer, _ = self.make_fuzzer(islands=3, population_size=4, generations=6, migration_interval=2)
        result = fuzzer.run()
        assert len(result.final_population) == 12
        assert result.best_fitness >= result.generations[0].best_fitness

    def test_link_mode_has_no_crossover(self):
        config = FuzzConfig(
            mode="link", population_size=6, generations=3, duration=2.0, seed=3,
            average_rate_mbps=3.0,
        )
        fuzzer = CCFuzz(Reno, config=config, evaluator=FakeEvaluator())
        result = fuzzer.run()
        assert all(ind.origin != "crossover" for ind in result.final_population)

    def test_traffic_mode_produces_crossovers(self):
        fuzzer, _ = self.make_fuzzer(generations=4)
        result = fuzzer.run()
        assert any(ind.origin == "crossover" for ind in result.final_population)

    def test_progress_callback_invoked_per_generation(self):
        fuzzer, _ = self.make_fuzzer(generations=4)
        seen = []
        fuzzer.run(progress=seen.append)
        assert len(seen) == len(fuzzer.run(progress=None).generations) or len(seen) >= 4

    def test_top_individuals_sorted(self):
        fuzzer, _ = self.make_fuzzer()
        result = fuzzer.run()
        top = result.top_individuals(3)
        assert top[0].fitness >= top[1].fitness >= top[2].fitness

    def test_patience_stops_early(self):
        fuzzer, _ = self.make_fuzzer(generations=50, patience=2)
        result = fuzzer.run()
        assert result.converged_generation < 49


class TestFuzzConfig:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            FuzzConfig(mode="bogus")

    def test_invalid_population_rejected(self):
        with pytest.raises(ValueError):
            FuzzConfig(population_size=1)

    def test_elite_must_be_smaller_than_population(self):
        with pytest.raises(ValueError):
            FuzzConfig(population_size=4, k_elite=4)

    @pytest.mark.parametrize("fraction", [-0.1, 1.1])
    def test_migration_fraction_must_be_unit_interval(self, fraction):
        with pytest.raises(ValueError, match="migration_fraction"):
            FuzzConfig(migration_fraction=fraction)

    @pytest.mark.parametrize("top_k", [0, -3])
    def test_top_k_must_be_positive(self, top_k):
        with pytest.raises(ValueError, match="top_k"):
            FuzzConfig(top_k=top_k)

    @pytest.mark.parametrize("duration", [0.0, -1.0])
    def test_duration_must_be_positive(self, duration):
        with pytest.raises(ValueError, match="duration"):
            FuzzConfig(duration=duration)

    @pytest.mark.parametrize("generations", [0, -1])
    def test_generations_must_be_positive(self, generations):
        with pytest.raises(ValueError, match="generations"):
            FuzzConfig(generations=generations)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            FuzzConfig(backend="gpu")

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            FuzzConfig(workers=0)

    def test_paper_defaults_match_section_4(self):
        config = FuzzConfig.paper_defaults()
        assert config.total_population == 500
        assert config.islands == 20
        assert config.k_elite == 1
        assert config.crossover_fraction == pytest.approx(0.3)
        assert config.migration_interval == 10
        assert config.migration_fraction == pytest.approx(0.1)
        assert config.sim.bottleneck_rate_mbps == pytest.approx(12.0)
        assert config.sim.min_rto == pytest.approx(1.0)

    def test_duration_propagates_to_simulation(self):
        config = FuzzConfig(duration=3.0)
        assert config.sim.duration == 3.0
