"""Unit and property tests for the metrics registry and snapshot algebra.

The observability layer's correctness claims are algebraic — ``merge`` is
commutative/associative with the empty snapshot as identity, and
``apply_delta(old, delta(new, old)) == new`` for any two snapshots of one
registry — so Hypothesis generates operation sequences and checks the laws
hold on the resulting snapshots.  Observation values are integers so float
non-associativity cannot produce spurious counterexamples; the laws the
docstrings claim are exact over integer-valued metrics.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    MetricsRegistry,
    NullRegistry,
    apply_delta,
    delta,
    empty_snapshot,
    get_registry,
    merge,
    reset_registry,
    set_enabled,
)


class TestRegistryBasics:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.counter("a") == 5
        assert registry.counter("missing") == 0

    def test_counters_are_monotone(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="monotone"):
            registry.inc("a", -1)

    def test_gauges_set_and_add(self):
        registry = MetricsRegistry()
        registry.gauge_set("depth", 3)
        registry.gauge_add("depth", -1)
        assert registry.gauge("depth") == 2
        assert registry.gauge("missing") == 0

    def test_histogram_fields(self):
        registry = MetricsRegistry()
        for value in (0.5, 2.0, 3.0, -1.0):
            registry.observe("lat", value)
        payload = registry.snapshot()["histograms"]["lat"]
        assert payload["count"] == 4
        assert payload["sum"] == pytest.approx(4.5)
        assert payload["min"] == -1.0
        assert payload["max"] == 3.0
        # 0.5 -> exponent -1; 2.0/3.0 -> exponent 1; -1.0 -> underflow.
        assert payload["buckets"] == {"-1": 1, "1": 2, "le0": 1}

    def test_timer_observes_elapsed_seconds(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            pass
        payload = registry.snapshot()["histograms"]["t"]
        assert payload["count"] == 1
        assert payload["sum"] >= 0.0

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.observe("h", 1.0)
        snap = registry.snapshot()
        snap["counters"]["a"] = 99
        snap["histograms"]["h"]["buckets"]["0"] = 99
        assert registry.counter("a") == 1
        assert registry.snapshot()["histograms"]["h"]["buckets"] == {"0": 1}

    def test_clear_drops_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.gauge_set("g", 1)
        registry.observe("h", 1.0)
        registry.clear()
        assert registry.snapshot() == empty_snapshot()

    def test_null_registry_records_nothing(self):
        registry = NullRegistry()
        registry.inc("a", 5)
        registry.gauge_set("g", 1)
        registry.gauge_add("g", 1)
        registry.observe("h", 1.0)
        with registry.timer("t"):
            pass
        assert registry.snapshot() == empty_snapshot()

    def test_threaded_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.inc("n")
                registry.observe("h", 1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n") == 4000
        assert registry.snapshot()["histograms"]["h"]["count"] == 4000


class TestGlobalRegistry:
    def test_set_enabled_swaps_in_null_registry(self):
        previous = set_enabled(True)
        try:
            live = get_registry()
            assert not isinstance(live, NullRegistry)
            assert set_enabled(False) is True
            assert isinstance(get_registry(), NullRegistry)
            assert set_enabled(True) is False
            assert get_registry() is live
        finally:
            set_enabled(previous)

    def test_reset_registry_replaces_the_global(self):
        previous = set_enabled(True)
        try:
            get_registry().inc("stale")
            fresh = reset_registry()
            assert fresh is get_registry()
            assert fresh.counter("stale") == 0
        finally:
            set_enabled(previous)


# --------------------------------------------------------------------------- #
# Property tests: snapshot algebra
# --------------------------------------------------------------------------- #

names_st = st.sampled_from(["a.b", "c.d", "e"])

#: Integer-valued operations keep every sum exactly representable, so the
#: algebraic laws are exact (float addition is not associative in general).
ops_st = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), names_st, st.integers(min_value=0, max_value=1000)),
        st.tuples(st.just("gauge"), names_st, st.integers(min_value=-100, max_value=100)),
        st.tuples(st.just("observe"), names_st, st.integers(min_value=-8, max_value=4096)),
    ),
    max_size=30,
)


def snapshot_from(ops):
    registry = MetricsRegistry()
    apply_ops(registry, ops)
    return registry.snapshot()


def apply_ops(registry, ops):
    for kind, name, value in ops:
        if kind == "inc":
            registry.inc(name, value)
        elif kind == "gauge":
            registry.gauge_set(name, value)
        else:
            registry.observe(name, value)


@settings(max_examples=60, deadline=None)
@given(ops_st, ops_st)
def test_merge_is_commutative(ops_a, ops_b):
    a, b = snapshot_from(ops_a), snapshot_from(ops_b)
    assert merge(a, b) == merge(b, a)


@settings(max_examples=60, deadline=None)
@given(ops_st, ops_st, ops_st)
def test_merge_is_associative(ops_a, ops_b, ops_c):
    a, b, c = snapshot_from(ops_a), snapshot_from(ops_b), snapshot_from(ops_c)
    assert merge(merge(a, b), c) == merge(a, merge(b, c))


@settings(max_examples=60, deadline=None)
@given(ops_st)
def test_empty_snapshot_is_merge_identity(ops):
    a = snapshot_from(ops)
    assert merge(a, empty_snapshot()) == a
    assert merge(empty_snapshot(), a) == a


@settings(max_examples=60, deadline=None)
@given(ops_st, ops_st)
def test_delta_then_apply_round_trips(ops_before, ops_after):
    """apply_delta(old, delta(new, old)) == new for snapshots of one registry."""
    registry = MetricsRegistry()
    apply_ops(registry, ops_before)
    old = registry.snapshot()
    apply_ops(registry, ops_after)
    new = registry.snapshot()
    assert apply_delta(old, delta(new, old)) == new


@settings(max_examples=60, deadline=None)
@given(ops_st)
def test_delta_against_self_is_quiet(ops):
    """A no-progress delta carries no counter or histogram activity."""
    snap = snapshot_from(ops)
    diff = delta(snap, snap)
    assert diff["counters"] == {}
    assert diff["histograms"] == {}
