"""Campaign orchestration: scenario-matrix fuzzing with a persistent corpus.

A *campaign* turns the one-off fuzzing runs of the paper into a systematic
benchmark sweep:

* :mod:`spec` — declarative campaign specs (CCAs × modes × objectives ×
  network conditions) expanded into a deterministic scenario matrix;
* :mod:`corpus` — the persistent on-disk attack corpus: fingerprint-deduped
  winning traces with full provenance;
* :mod:`scheduler` — runs every scenario through one shared evaluation
  backend and trace cache, seeding each search from the corpus;
* :mod:`replay` — regression mode: re-simulate the whole corpus against a
  CCA and report score deltas;
* :mod:`report` — plain-text and JSON campaign summaries.
"""

from .corpus import CorpusEntry, CorpusStore, mode_of_trace
from .replay import ReplayReport, ReplayRow, replay_corpus
from .report import (
    format_campaign_report,
    format_corpus_report,
    format_replay_report,
    read_campaign_report,
    write_campaign_report,
)
from .scheduler import CampaignResult, CampaignRunner, ScenarioOutcome
from .spec import CampaignSpec, GaBudget, NetworkCondition, Scenario
from .worker import FleetWorker, run_fleet

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "FleetWorker",
    "run_fleet",
    "CampaignSpec",
    "CorpusEntry",
    "CorpusStore",
    "GaBudget",
    "NetworkCondition",
    "ReplayReport",
    "ReplayRow",
    "Scenario",
    "ScenarioOutcome",
    "format_campaign_report",
    "format_corpus_report",
    "format_replay_report",
    "mode_of_trace",
    "read_campaign_report",
    "replay_corpus",
    "write_campaign_report",
]
