"""Figure 4c: the mechanism behind the BBR stall.

The paper's Fig. 4c is a timeline: a segment and its fast retransmission are
lost, the connection waits out the 1-second minimum RTO, the RTO marks the
still-unacknowledged tail as lost, BBR spuriously retransmits those segments
while their SACKs are in flight, and the arriving SACKs — now matched against
the rewritten ``prior_delivered`` stamps — end probing rounds prematurely and
poison the bandwidth samples.

This benchmark reproduces the seed event surgically (TargetedLoss drops one
segment twice, nothing else) and reports every observable step of that chain,
for default BBR and for the paper's ProbeRTT-on-RTO mitigation.
"""

from __future__ import annotations

from conftest import print_rows, run_once

from repro.analysis import bbr_bug_evidence, describe_bug_timeline
from repro.attacks import lose_segment_and_retransmission
from repro.netsim import SimulationConfig, run_simulation
from repro.tcp import Bbr

DURATION = 6.0
VICTIM_SEGMENT = 2000


def run_experiment():
    config = SimulationConfig(duration=DURATION)
    default = run_simulation(
        Bbr, config, drop_filter=lose_segment_and_retransmission(VICTIM_SEGMENT)
    )
    fixed = run_simulation(
        lambda: Bbr(probe_rtt_on_rto=True),
        config,
        drop_filter=lose_segment_and_retransmission(VICTIM_SEGMENT),
    )
    clean = run_simulation(Bbr, config)
    return default, fixed, clean


def test_fig4c_bbr_stall_mechanism(benchmark):
    default, fixed, clean = run_once(benchmark, run_experiment)

    default_evidence = bbr_bug_evidence(default)
    fixed_evidence = bbr_bug_evidence(fixed)
    clean_evidence = bbr_bug_evidence(clean)

    print()
    print(describe_bug_timeline(default_evidence))
    print_rows(
        "Fig 4c: mechanism footprint (default vs ProbeRTT-on-RTO vs clean run)",
        [
            {"run": "bbr default + double loss", **default_evidence.as_dict()},
            {"run": "bbr fixed + double loss", **fixed_evidence.as_dict()},
            {"run": "bbr clean", **clean_evidence.as_dict()},
        ],
    )

    # The chain of Fig. 4c, step by step:
    # 1. the double loss forces at least one retransmission timeout,
    assert default_evidence.rto_count >= 1
    # 2. the RTO causes spurious retransmissions of segments whose SACKs were
    #    still in flight,
    assert default_evidence.spurious_retransmissions > 0
    # 3. those rewritten prior_delivered stamps end probing rounds prematurely
    #    often enough to churn through the whole 10-round max filter,
    assert default_evidence.premature_round_ends >= 10
    # 4. and the footprint is far beyond the clean-run baseline (which may see
    #    a single RTO during the startup overshoot on this shallow buffer).
    assert (
        default_evidence.premature_round_ends
        >= clean_evidence.premature_round_ends + 10
    )
    assert (
        default_evidence.spurious_retransmissions
        >= clean_evidence.spurious_retransmissions + 10
    )
