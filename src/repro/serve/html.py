"""The dashboard's single-file HTML/JS asset.

Served inline from memory at ``/`` — no static file tree, no frontend
dependencies, nothing to build.  The page is a thin client over the JSON
endpoints: it polls ``/api/status``, renders the coverage heatmap and
per-CCA rankings, lists the corpus, and replays an entry (sparkline via
inline SVG) through ``/api/replay``.  Everything it shows can equally be
``curl``-ed; the page exists so a campaign can be watched without tooling.
"""

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro campaign dashboard</title>
<style>
  :root { --bg:#11151a; --panel:#1a2027; --ink:#d7dde4; --dim:#7c8896;
          --accent:#4cc2ff; --good:#57c979; --warn:#e0b050; --bad:#e06c60; }
  body { background:var(--bg); color:var(--ink); margin:0;
         font:14px/1.45 "SF Mono","Cascadia Code",Menlo,Consolas,monospace; }
  header { padding:14px 22px; border-bottom:1px solid #2a323b;
           display:flex; gap:18px; align-items:baseline; flex-wrap:wrap; }
  header h1 { font-size:17px; margin:0; }
  header .state { color:var(--accent); }
  main { display:grid; grid-template-columns:1fr 1fr; gap:16px; padding:16px 22px; }
  section { background:var(--panel); border:1px solid #2a323b; border-radius:6px;
            padding:12px 16px; overflow:auto; }
  section.wide { grid-column:1 / -1; }
  h2 { font-size:13px; text-transform:uppercase; letter-spacing:.08em;
       color:var(--dim); margin:0 0 10px; }
  table { border-collapse:collapse; width:100%; font-size:13px; }
  th, td { text-align:left; padding:3px 10px 3px 0; white-space:nowrap; }
  th { color:var(--dim); font-weight:normal; border-bottom:1px solid #2a323b; }
  tr.clickable { cursor:pointer; }
  tr.clickable:hover td { color:var(--accent); }
  .bar { height:8px; background:#262e37; border-radius:4px; overflow:hidden;
         width:220px; display:inline-block; vertical-align:middle; }
  .bar i { display:block; height:100%; background:var(--accent); }
  .heat td.cell { text-align:center; min-width:34px; padding:2px;
                  border:1px solid #242c34; color:var(--dim); }
  .num { color:var(--ink); }
  .dim { color:var(--dim); }
  .good { color:var(--good); } .warn { color:var(--warn); } .bad { color:var(--bad); }
  svg.spark { background:#141a20; border:1px solid #2a323b; border-radius:4px; }
  select, button { background:#242c34; color:var(--ink); border:1px solid #39434e;
                   border-radius:4px; padding:3px 8px; font:inherit; }
  #replay-out { margin-top:10px; }
  #log { max-height:180px; overflow:auto; font-size:12px; color:var(--dim); }
</style>
</head>
<body>
<header>
  <h1>repro campaign <span id="campaign" class="state">—</span></h1>
  <span id="progress-text" class="dim">loading…</span>
  <span class="bar"><i id="progress-bar" style="width:0%"></i></span>
  <span id="rates" class="dim"></span>
</header>
<main>
  <section class="wide" id="status-section">
    <h2>Scenarios</h2>
    <table id="scenarios"><tbody></tbody></table>
    <div id="extras" class="dim" style="margin-top:8px"></div>
  </section>
  <section>
    <h2>Per-CCA vulnerability rankings</h2>
    <table id="rankings"><tbody></tbody></table>
  </section>
  <section>
    <h2>Behavior coverage</h2>
    <div id="coverage"></div>
  </section>
  <section class="wide">
    <h2>Corpus <span id="corpus-count" class="dim"></span> — click an entry to replay</h2>
    <div>replay against <select id="replay-cca"></select></div>
    <div id="replay-out"></div>
    <table id="corpus"><tbody></tbody></table>
  </section>
  <section class="wide">
    <h2>Telemetry stream</h2>
    <div id="log"></div>
  </section>
</main>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
const fmt = (v, d=3) => (v === null || v === undefined) ? "–"
  : (typeof v === "number" ? v.toFixed(d) : String(v));
async function getJSON(url) {
  const response = await fetch(url);
  return response.json();
}

function renderStatus(s) {
  $("campaign").textContent =
    (s.campaign || "(no campaign)") + " · " + (s.state || "unknown").toUpperCase();
  const fraction = s.progress_fraction;
  $("progress-bar").style.width = (fraction === null ? 0 : fraction * 100) + "%";
  $("progress-text").textContent =
    `${s.scenarios_completed}/${s.scenarios_total} scenarios · ` +
    (fraction === null ? "n/a" : Math.round(fraction * 100) + "%") +
    (s.eta_s ? ` · ETA ${Math.round(s.eta_s)}s` : "");
  $("rates").textContent =
    `${s.evaluations} evals` +
    (s.evals_per_sec ? ` @ ${fmt(s.evals_per_sec, 1)}/s` : "") +
    (s.cache_hit_rate !== null ? ` · cache ${(s.cache_hit_rate * 100).toFixed(0)}%` : "");
  const body = $("scenarios").tBodies[0];
  body.innerHTML = "<tr><th>scenario</th><th>state</th><th>gen</th>" +
    "<th>best</th><th>evals</th><th>cells</th></tr>";
  for (const [sid, e] of Object.entries(s.scenarios || {}).sort()) {
    const tr = body.insertRow();
    const cls = e.state === "complete" ? "good" : (e.state === "running" ? "warn" : "dim");
    tr.innerHTML = `<td>${sid}</td><td class="${cls}">${e.state}</td>` +
      `<td>${e.generation ?? 0}${e.generations_total ? "/" + e.generations_total : ""}</td>` +
      `<td class="num">${fmt(e.best_fitness, 4)}</td>` +
      `<td>${e.evaluations ?? 0}</td><td>${e.cells ?? 0}</td>`;
  }
  const faults = s.faults || {};
  const faultText = Object.values(faults).some(v => v)
    ? ` · faults: ${faults.failures} failed, ${faults.retries} retried, ` +
      `${faults.quarantined} quarantined` : "";
  const workerCount = Object.keys(s.workers || {}).length;
  $("extras").textContent =
    (workerCount ? `${workerCount} fleet workers · ` : "") +
    `quarantine file: ${s.quarantine_entries} entries` +
    (s.manifest_present ? ` · manifest digest ${(s.result_digest || "n/a").slice(0, 16)}`
                        : " · no manifest yet") + faultText;
}

function renderRankings(r) {
  const body = $("rankings").tBodies[0];
  body.innerHTML = "<tr><th>cca</th><th>worst</th><th>mean</th><th>done</th>" +
    "<th>corpus</th><th>quar.</th><th>triage</th></tr>";
  for (const row of r.rows || []) {
    const tr = body.insertRow();
    tr.innerHTML = `<td>${row.cca || "?"}</td>` +
      `<td class="bad">${fmt(row.worst_fitness, 4)}</td>` +
      `<td>${fmt(row.mean_best_fitness, 4)}</td>` +
      `<td>${row.scenarios_completed}</td><td>${row.corpus_entries}</td>` +
      `<td>${row.quarantined}</td><td>${row.triage_most_vulnerable}</td>`;
  }
}

function renderCoverage(c) {
  const host = $("coverage");
  host.innerHTML = `<div class="dim">${c.cells} cells</div>`;
  for (const [cca, plane] of Object.entries(c.heatmap || {})) {
    const peak = Math.max(1, ...plane.counts.flat());
    let html = `<div style="margin-top:8px">${cca}</div>` +
      `<table class="heat"><tr><td></td>` +
      plane.cols.map(col => `<td class="cell dim">${col}</td>`).join("") + "</tr>";
    for (let i = plane.rows.length - 1; i >= 0; i--) {
      html += `<tr><td class="cell dim">${plane.rows[i]}</td>` + plane.counts[i].map(n => {
        const alpha = n ? (0.25 + 0.75 * n / peak) : 0;
        return `<td class="cell" style="background:rgba(76,194,255,${alpha})">` +
               `${n || ""}</td>`;
      }).join("") + "</tr>";
    }
    host.innerHTML += html + "</table>";
  }
}

function sparkline(points) {
  if (!points.length) return "<span class='dim'>(no series)</span>";
  const w = 560, h = 80, xs = points.map(p => p[0]), ys = points.map(p => p[1]);
  const x0 = Math.min(...xs), x1 = Math.max(...xs) || 1;
  const y1 = Math.max(...ys) || 1;
  const path = points.map((p, i) =>
    (i ? "L" : "M") + ((p[0] - x0) / (x1 - x0) * (w - 8) + 4).toFixed(1) +
    "," + (h - 4 - p[1] / y1 * (h - 8)).toFixed(1)).join(" ");
  return `<svg class="spark" width="${w}" height="${h}">` +
    `<path d="${path}" fill="none" stroke="#4cc2ff" stroke-width="1.5"/>` +
    `<text x="6" y="14" fill="#7c8896" font-size="11">peak ${y1.toFixed(2)} Mbps</text></svg>`;
}

async function replayEntry(fp) {
  const cca = $("replay-cca").value;
  $("replay-out").innerHTML = `<span class="dim">replaying ${fp.slice(0, 12)} vs ${cca}…</span>`;
  const r = await getJSON(`/api/replay/${fp}?cca=${encodeURIComponent(cca)}`);
  if (r.error) { $("replay-out").innerHTML = `<span class="bad">${r.error}</span>`; return; }
  $("replay-out").innerHTML =
    `<div>${fp.slice(0, 12)} vs <b>${r.cca}</b>: score ` +
    `<span class="bad">${fmt(r.score.total, 4)}</span>` +
    ` (original ${fmt(r.original_score, 4)}, Δ ${fmt(r.delta, 4)})` +
    ` · ${r.summary.throughput_mbps} Mbps` +
    ` · ${r.cached ? "<span class='good'>cache hit</span>" : "simulated"}</div>` +
    sparkline(r.series.windowed_throughput || []);
}

async function renderCorpus() {
  const c = await getJSON("/api/corpus");
  $("corpus-count").textContent = `(${c.entries})`;
  const body = $("corpus").tBodies[0];
  body.innerHTML = "<tr><th>fingerprint</th><th>mode</th><th>scenario</th>" +
    "<th>score</th><th>origin</th><th>cell</th></tr>";
  const ccas = new Set();
  for (const row of c.rows || []) {
    if (row.cca) ccas.add(row.cca);
    const tr = body.insertRow();
    tr.className = "clickable";
    tr.onclick = () => replayEntry(row.fingerprint);
    tr.innerHTML = `<td>${row.fingerprint.slice(0, 12)}</td><td>${row.mode}</td>` +
      `<td>${row.scenario_id || "–"}</td><td class="num">${fmt(row.score, 4)}</td>` +
      `<td>${row.origin}</td><td class="dim">${row.behavior_cell || "–"}</td>`;
  }
  const select = $("replay-cca");
  if (!select.options.length) {
    for (const cca of ["reno", "cubic", "bbr", ...ccas]) {
      if (![...select.options].some(o => o.value === cca)) {
        select.add(new Option(cca, cca));
      }
    }
  }
}

let streamOffset = 0;
async function tailStream() {
  try {
    const s = await getJSON(`/api/stream?offset=${streamOffset}&wait=10`);
    streamOffset = s.offset;
    const log = $("log");
    for (const record of s.records || []) {
      if (record.type === "metrics") continue;
      const div = document.createElement("div");
      div.textContent = `${new Date(record.t * 1000).toLocaleTimeString()} ` +
        `${record.type} ${record.scenario || record.campaign || ""} ` +
        (record.best_fitness !== undefined ? `best=${fmt(record.best_fitness, 4)}` : "");
      log.prepend(div);
    }
    while (log.children.length > 200) log.lastChild.remove();
  } catch (err) { await new Promise(r => setTimeout(r, 2000)); }
  tailStream();
}

async function refresh() {
  try {
    renderStatus(await getJSON("/api/status"));
    renderRankings(await getJSON("/api/rankings"));
    renderCoverage(await getJSON("/api/coverage"));
  } catch (err) { /* server going away mid-poll is fine */ }
}
refresh();
renderCorpus();
tailStream();
setInterval(refresh, 3000);
setInterval(renderCorpus, 15000);
</script>
</body>
</html>
"""
