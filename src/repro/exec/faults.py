"""Structured evaluation failures and the fault-tolerance policy.

The exec layer's core contract is that ``evaluate_batch`` always returns one
:data:`~repro.exec.workers.EvaluationOutcome` per job, in input order.  This
module extends that contract to misbehaving evaluations: instead of letting
an exception (or a dead pool worker) abort the whole batch, every failure is
folded into a *failure outcome* — a deterministic penalty :class:`Score`
plus a ``summary["failure"]`` record describing what happened.  Failure
outcomes flow through the coalescing cache, the GA and the journal exactly
like healthy ones, which is what keeps faulted campaigns resumable and
fleet-replayable bit-identically.

Failure taxonomy (``EvaluationFailure.kind``):

``crash``
    The evaluation raised.  Deterministic (the simulator consumes no
    randomness), so the job is quarantined immediately.
``garbage``
    The evaluation returned something that is not a ``(Score, summary)``
    pair with a finite total.  Deterministic; quarantined immediately.
``timeout``
    The job exceeded ``FaultPolicy.job_timeout`` wall-clock seconds in a
    pool worker and the worker was killed.  Treated as deterministic
    (a hang re-hangs) and quarantined.
``worker-death``
    The pool worker evaluating the job died (hard exit, OOM kill, pool
    breakage).  Ambiguous: retried up to ``max_retries`` times with
    exponential backoff, and quarantined only once retries are exhausted —
    at that point the job is a persistent worker-killer.
``quarantined``
    The job matched an existing quarantine entry and was refused without
    executing.  Never re-quarantined.
"""

from __future__ import annotations

import math
import os
import time
import traceback
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from ..scoring.base import Score
from .cache import cca_identity
from .workers import EvaluationJob, EvaluationOutcome, evaluate_job

#: All values ``EvaluationFailure.kind`` may take.
FAILURE_KINDS = ("crash", "garbage", "timeout", "worker-death", "quarantined")

#: Fitness assigned to failure outcomes: far below anything a real
#: evaluation produces, so faulted traces never win selection or harvest.
PENALTY_FITNESS = -1e9


@dataclass(frozen=True)
class EvaluationFailure:
    """What went wrong with one evaluation, in journal-serializable form."""

    kind: str
    message: str
    fingerprint: str
    cca: str
    attempts: int = 1
    quarantined: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {self.kind!r}; expected one of {FAILURE_KINDS}")

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "cca": self.cca,
            "attempts": self.attempts,
        }
        if self.quarantined:
            payload["quarantined"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EvaluationFailure":
        return cls(
            kind=str(payload["kind"]),
            message=str(payload.get("message", "")),
            fingerprint=str(payload.get("fingerprint", "unknown")),
            cca=str(payload.get("cca", "unknown")),
            attempts=int(payload.get("attempts", 1)),
            quarantined=bool(payload.get("quarantined", False)),
        )

    def with_attempts(self, attempts: int) -> "EvaluationFailure":
        return replace(self, attempts=attempts)


@dataclass
class FaultPolicy:
    """How a backend treats evaluations that fail.

    The default policy (no timeout, two retries, no quarantine store) makes
    failures visible without any persistence; campaigns attach a
    :class:`~repro.exec.quarantine.QuarantineStore` so deterministic
    crashers are refused on every later encounter, including after resume.
    """

    job_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_max_s: float = 1.0
    penalty_fitness: float = PENALTY_FITNESS
    quarantine: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.job_timeout is not None and not self.job_timeout > 0:
            raise ValueError("job_timeout must be positive (or None to disable)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s <= 0 or self.backoff_max_s <= 0:
            raise ValueError("backoff delays must be positive")

    def backoff_s(self, attempts: int) -> float:
        """Delay before retry number ``attempts`` (1-based), capped."""
        return min(self.backoff_base_s * (2 ** max(0, attempts - 1)), self.backoff_max_s)


def job_fingerprint(job: EvaluationJob) -> str:
    """The trace fingerprint chaos plans and quarantine entries key on."""
    try:
        return job.trace.fingerprint()
    except Exception:  # a trace broken enough to not fingerprint
        return "unknown"


def job_cca(job: EvaluationJob) -> str:
    """The CCA identity recorded in failure provenance."""
    try:
        return cca_identity(job.cca_factory())
    except Exception:  # the factory itself may be the thing that crashes
        return "unknown"


def describe_exception(exc: BaseException) -> str:
    """Deterministic one-line description: type, message, raise site."""
    text = f"{type(exc).__name__}: {exc}"
    tb = traceback.extract_tb(exc.__traceback__)
    if tb:
        frame = tb[-1]
        text += f" (raised at {os.path.basename(frame.filename)}:{frame.lineno} in {frame.name})"
    return text


def outcome_shape_error(outcome: Any) -> Optional[str]:
    """Why ``outcome`` is not a valid ``(Score, summary)`` pair, or ``None``."""
    if not isinstance(outcome, tuple) or len(outcome) != 2:
        return f"outcome is {type(outcome).__name__}, not a (score, summary) pair"
    score, summary = outcome
    if not isinstance(score, Score):
        return f"score is {type(score).__name__}, not a Score"
    if not all(
        isinstance(part, (int, float)) and math.isfinite(part)
        for part in (score.total, score.performance, score.trace)
    ):
        return "score components are not finite numbers"
    if not isinstance(summary, dict):
        return f"summary is {type(summary).__name__}, not a dict"
    return None


class _ChaosCrash(RuntimeError):
    """The exception an injected ``crash`` fault raises."""


def guarded_evaluate(
    job: EvaluationJob,
    chaos: Optional[Any] = None,
    *,
    allow_exit: bool = True,
) -> Tuple[str, Any]:
    """Evaluate one job, converting every failure into structured data.

    Returns ``("ok", outcome)`` or ``("fail", EvaluationFailure)``; never
    raises for anything an evaluation does (only ``BaseException`` escapes,
    e.g. ``KeyboardInterrupt``).  ``chaos`` is a :class:`ChaosPlan` (or any
    object with ``fault_for``) consulted before evaluating.  ``allow_exit``
    is False for in-process backends, which downgrade a ``hang``/``exit``
    fault to a crash rather than wedging or killing the host process — the
    documented limitation of running untrusted evaluations without process
    isolation.
    """
    fingerprint = job_fingerprint(job)
    fault = chaos.fault_for(fingerprint) if chaos is not None else None
    if fault == "exit" and allow_exit:
        # No unwinding, no cleanup: mimics a segfault or the OOM killer.
        os._exit(getattr(chaos, "exit_code", 23))
    if fault == "hang" and allow_exit:
        time.sleep(getattr(chaos, "hang_s", 3600.0))
    try:
        if fault in ("crash", "exit", "hang") and (fault == "crash" or not allow_exit):
            raise _ChaosCrash(f"chaos: injected {fault} for {fingerprint}")
        if fault == "garbage":
            outcome: Any = ("chaos-garbage", None)
        else:
            outcome = evaluate_job(job)
    except Exception as exc:
        return "fail", EvaluationFailure(
            kind="crash",
            message=describe_exception(exc),
            fingerprint=fingerprint,
            cca=job_cca(job),
        )
    problem = outcome_shape_error(outcome)
    if problem is not None:
        return "fail", EvaluationFailure(
            kind="garbage",
            message=problem,
            fingerprint=fingerprint,
            cca=job_cca(job),
        )
    return "ok", outcome


def failure_outcome(failure: EvaluationFailure, policy: FaultPolicy) -> EvaluationOutcome:
    """Fold a failure into the outcome shape the rest of the system expects.

    The penalty score is deterministic and carries no wall-clock data, so a
    failure outcome is bit-identical across runs, backends and resumes —
    it caches, journals and digests like any healthy outcome.
    """
    penalty = policy.penalty_fitness
    score = Score(total=penalty, performance=penalty, trace=0.0)
    return score, {"failure": failure.to_dict()}


def failure_from_summary(summary: Mapping[str, Any]) -> Optional[EvaluationFailure]:
    """Recover the failure record from an outcome summary, if it is one."""
    payload = summary.get("failure") if isinstance(summary, Mapping) else None
    if not isinstance(payload, Mapping):
        return None
    try:
        return EvaluationFailure.from_dict(payload)
    except (KeyError, ValueError, TypeError):
        return None
