"""Bottleneck link models.

Two service disciplines are provided, matching the paper's two fuzzing modes
(section 3.1):

* :class:`FixedRateLink` — a constant-rate bottleneck used in traffic-fuzzing
  mode, where the adversary controls cross traffic only.
* :class:`TraceDrivenLink` — a MahiMahi-style link whose service is defined by
  a list of packet transmission opportunities, used in link-fuzzing mode,
  where the adversary controls the bottleneck service curve itself.

Both links drain the shared drop-tail gateway queue and hand packets to a
delivery callback after the fixed one-way propagation delay.

The service loop is self-clocked on scheduler fast lanes: while the queue is
busy, each service completion chains dequeue → transmit → next completion
directly, and both the completion stream and the propagation-delayed delivery
stream are monotone in time, so neither round-trips packets through the event
heap.  Execution order (tie-breaks included) is identical to heap scheduling.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from .engine import EventScheduler, FifoLane
from .packet import Packet
from .queue import DropTailQueue

DeliveryCallback = Callable[[Packet], None]


def mbps_to_pps(rate_mbps: float, mss_bytes: int = 1500) -> float:
    """Convert a rate in Mbps to MSS-sized packets per second."""
    if rate_mbps <= 0:
        raise ValueError("rate must be positive")
    return rate_mbps * 1e6 / (8.0 * mss_bytes)


def pps_to_mbps(rate_pps: float, mss_bytes: int = 1500) -> float:
    """Convert a rate in packets per second to Mbps."""
    return rate_pps * 8.0 * mss_bytes / 1e6


class Link:
    """Common behaviour for bottleneck links.

    A link is attached to the gateway queue and a scheduler.  Delivered
    packets are passed to ``deliver`` after ``propagation_delay`` seconds,
    modelling the fixed-propagation bottleneck of the paper's topology.
    """

    __slots__ = ("scheduler", "queue", "deliver", "propagation_delay", "serviced", "_delivery_lane")

    def __init__(
        self,
        scheduler: EventScheduler,
        queue: DropTailQueue,
        deliver: DeliveryCallback,
        propagation_delay: float = 0.02,
    ) -> None:
        self.scheduler = scheduler
        self.queue = queue
        self.deliver = deliver
        self.propagation_delay = propagation_delay
        self.serviced = 0
        # Deliveries happen a fixed propagation delay after each (monotone)
        # service completion, so they form a monotone fast lane.  The
        # topology shares this lane for returning ACKs (same fixed delay,
        # same nondecreasing clock), keeping the per-event lane scan short.
        self._delivery_lane: FifoLane = scheduler.fifo_lane()
        queue.set_enqueue_callback(self.on_enqueue)

    @property
    def propagation_lane(self) -> FifoLane:
        """The monotone lane carrying fixed-propagation-delay events."""
        return self._delivery_lane

    def on_enqueue(self, packet: Packet, now: float) -> None:
        """Hook called by the queue when a packet is admitted."""

    def start(self) -> None:
        """Install any service events needed before the simulation runs."""

    def _transmit(self, packet: Packet, now: float) -> None:
        self.serviced += 1
        self._delivery_lane.push_at(now + self.propagation_delay, self.deliver, packet)


class FixedRateLink(Link):
    """Constant-rate bottleneck (traffic-fuzzing mode).

    The link serves one packet every ``1 / rate_pps`` seconds whenever the
    queue is non-empty.  Service is work-conserving.
    """

    __slots__ = ("rate_pps", "_service_time", "_busy", "_service_lane")

    def __init__(
        self,
        scheduler: EventScheduler,
        queue: DropTailQueue,
        deliver: DeliveryCallback,
        rate_pps: float,
        propagation_delay: float = 0.02,
    ) -> None:
        super().__init__(scheduler, queue, deliver, propagation_delay)
        if rate_pps <= 0:
            raise ValueError("link rate must be positive")
        self.rate_pps = rate_pps
        self._service_time = 1.0 / rate_pps
        self._busy = False
        # While busy, completions fire every service time; pushes happen at
        # nondecreasing times, so the stream is monotone.
        self._service_lane: FifoLane = scheduler.fifo_lane()

    @property
    def service_time(self) -> float:
        return self._service_time

    def on_enqueue(self, packet: Packet, now: float) -> None:
        if not self._busy:
            self._busy = True
            self._service_lane.push_at(now + self._service_time, self._finish_service)

    def _finish_service(self) -> None:
        now = self.scheduler.now
        packet = self.queue.dequeue(now)
        if packet is not None:
            self.serviced += 1
            self._delivery_lane.push_at(now + self.propagation_delay, self.deliver, packet)
        if self.queue._queue:
            # Busy self-clocking: chain the next departure without going
            # idle (matches the work-conserving service discipline).
            self._service_lane.push_at(now + self._service_time, self._finish_service)
        else:
            self._busy = False


class TraceDrivenLink(Link):
    """MahiMahi-style trace-driven bottleneck (link-fuzzing mode).

    The service curve is a sorted sequence of timestamps; at each timestamp
    the link may transmit exactly one packet.  Opportunities that find an
    empty queue are wasted (non-work-conserving), exactly as in MahiMahi and
    in the paper's link-fuzzing representation (section 3.2).

    Parameters
    ----------
    opportunities:
        Packet transmission opportunity times, in seconds.  They need not be
        pre-sorted.
    repeat_period:
        If given, the opportunity schedule is repeated with this period so
        that simulations longer than the trace keep draining the queue.
    """

    __slots__ = ("opportunities", "repeat_period", "wasted_opportunities", "_opportunity_lane")

    def __init__(
        self,
        scheduler: EventScheduler,
        queue: DropTailQueue,
        deliver: DeliveryCallback,
        opportunities: Sequence[float],
        propagation_delay: float = 0.02,
        repeat_period: Optional[float] = None,
    ) -> None:
        super().__init__(scheduler, queue, deliver, propagation_delay)
        self.opportunities: List[float] = sorted(float(t) for t in opportunities)
        if self.opportunities and self.opportunities[0] < 0:
            raise ValueError("transmission opportunities must be non-negative")
        self.repeat_period = repeat_period
        if repeat_period is not None and self.opportunities and repeat_period <= self.opportunities[-1]:
            raise ValueError("repeat_period must exceed the last opportunity time")
        self.wasted_opportunities = 0
        # Opportunities are installed pre-sorted, so they form a monotone lane.
        self._opportunity_lane: FifoLane = scheduler.fifo_lane()

    def start(self, horizon: Optional[float] = None) -> None:
        """Schedule all transmission opportunities up to ``horizon``."""
        times = self.opportunities
        if self.repeat_period is not None and horizon is not None:
            repeated: List[float] = []
            offset = 0.0
            while offset <= horizon:
                repeated.extend(t + offset for t in self.opportunities if t + offset <= horizon)
                offset += self.repeat_period
            times = repeated
        lane = self._opportunity_lane
        callback = self._service_opportunity
        for t in times:
            if horizon is not None and t > horizon:
                continue
            lane.push_at(t, callback)

    def _service_opportunity(self) -> None:
        now = self.scheduler.now
        packet = self.queue.dequeue(now)
        if packet is None:
            self.wasted_opportunities += 1
            return
        self.serviced += 1
        self._delivery_lane.push_at(now + self.propagation_delay, self.deliver, packet)

    def stop(self) -> None:
        """Cancel all pending opportunities (used when aborting a run)."""
        self._opportunity_lane.clear()
