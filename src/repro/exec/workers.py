"""Picklable evaluation units for the parallel backends.

A worker evaluates one :class:`EvaluationJob` — ``(cca factory, simulation
config, trace, score function)`` — and returns ``(Score, result summary)``.
Everything here is defined at module top level so jobs can cross a
``multiprocessing`` pickle boundary: the CCA factory must itself be picklable
(a class, a top-level function or a :func:`functools.partial` of one — never
a lambda or closure).

The simulator consumes no random numbers, so a job's outcome depends only on
its fields; evaluating the same job in any process, in any order, yields a
bit-identical result.  All GA randomness (mutation, crossover, selection)
stays in the coordinating process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..coverage.signature import extract_signature
from ..netsim.simulation import CcaFactory, SimulationConfig, SimulationResult, run_simulation
from ..scoring.base import Score, ScoreFunction
from ..traces.trace import LinkTrace, LossTrace, PacketTrace, TrafficTrace

#: What one evaluation produces: the fitness plus a compact result summary.
EvaluationOutcome = Tuple[Score, Dict[str, Any]]


@dataclass(frozen=True)
class EvaluationJob:
    """One unit of work: simulate ``trace`` against ``cca_factory`` and score it."""

    cca_factory: CcaFactory
    sim_config: SimulationConfig
    trace: PacketTrace
    score_function: ScoreFunction


def simulate_packet_trace(
    cca_factory: CcaFactory, sim_config: SimulationConfig, trace: PacketTrace
) -> SimulationResult:
    """Run one simulation, dispatching the trace to the right simulator input."""
    if isinstance(trace, LinkTrace):
        return run_simulation(cca_factory, sim_config, link_trace=trace.timestamps)
    if isinstance(trace, TrafficTrace):
        return run_simulation(cca_factory, sim_config, cross_traffic_times=trace.timestamps)
    if isinstance(trace, LossTrace):
        return run_simulation(cca_factory, sim_config, loss_times=trace.timestamps)
    raise TypeError(f"cannot simulate trace type {type(trace).__name__}")


def evaluate_job(job: EvaluationJob) -> EvaluationOutcome:
    """Worker entry point: simulate, score, summarise.

    Returns only small picklable values (a frozen :class:`Score` and a plain
    dict) — never the full :class:`SimulationResult`, whose per-packet series
    would dominate inter-process transfer cost.  The summary carries the
    run's behavior signature, so coverage guidance and corpus annotation
    work from cached outcomes without re-simulating.
    """
    result = simulate_packet_trace(job.cca_factory, job.sim_config, job.trace)
    score = job.score_function(result, job.trace)
    summary = result.summary()
    summary["behavior_signature"] = extract_signature(result).to_dict()
    return score, summary
