"""Regression replay: re-score the whole corpus against one CCA.

Replay is what turns the corpus into a growing adversarial benchmark suite:
after any change — a new CCA variant, a patched algorithm, a different
bottleneck — re-simulating every stored trace shows exactly which known
attacks got better or worse.  The simulator is deterministic, so replaying
the same corpus against the same CCA always produces identical scores.

Each entry replays under the network condition recorded in its provenance
(falling back to simulator defaults for entries without one, e.g. imported
traces), scored with the objective it was discovered under, so the delta
column compares like with like: *this trace, this scenario, other CCA*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..exec.backend import EvaluationBackend, SerialBackend
from ..exec.workers import EvaluationJob
from ..scoring.objectives import make_score_function
from ..tcp.cca import cca_factory
from .corpus import CorpusStore

#: Objective assumed for entries that carry none (builtin attacks).
DEFAULT_OBJECTIVE = "throughput"


@dataclass
class ReplayRow:
    """One corpus entry's replay outcome."""

    fingerprint: str
    scenario_id: str
    origin_cca: str
    objective: str
    original_score: Optional[float]
    replay_score: float
    summary: Dict[str, Any] = field(default_factory=dict)

    @property
    def delta(self) -> Optional[float]:
        """Replay minus original (positive = the attack bites harder now)."""
        if self.original_score is None:
            return None
        return self.replay_score - self.original_score

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "scenario": self.scenario_id,
            "origin_cca": self.origin_cca or "-",
            "objective": self.objective,
            "original": self.original_score,
            "replay": self.replay_score,
            "delta": self.delta,
            "throughput_mbps": self.summary.get("throughput_mbps", "n/a"),
        }


@dataclass
class ReplayReport:
    """Replay of a whole corpus against one CCA."""

    replay_cca: str
    rows: List[ReplayRow]

    @property
    def entry_count(self) -> int:
        return len(self.rows)

    def best_by_objective(self) -> Dict[str, ReplayRow]:
        """The entry hurting the replayed CCA most, per objective.

        Scores from different objectives live on incomparable scales (negated
        Mbps vs. delay seconds), so there is no single cross-objective "worst
        attack" — only a worst per objective.
        """
        best: Dict[str, ReplayRow] = {}
        for row in self.rows:
            current = best.get(row.objective)
            if current is None or row.replay_score > current.replay_score:
                best[row.objective] = row
        return best

    def regressions(self, threshold: float = 0.0) -> List[ReplayRow]:
        """Entries scoring higher on replay than at discovery (worse CCA)."""
        return [row for row in self.rows if row.delta is not None and row.delta > threshold]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "replay_cca": self.replay_cca,
            "entries": self.entry_count,
            "regressions": len(self.regressions()),
            "best_by_objective": {
                objective: {"fingerprint": row.fingerprint, "score": row.replay_score}
                for objective, row in sorted(self.best_by_objective().items())
            },
            "rows": [row.as_dict() for row in self.rows],
        }


def replay_corpus(
    corpus: CorpusStore,
    cca: str,
    *,
    backend: Optional[EvaluationBackend] = None,
    mode: Optional[str] = None,
) -> ReplayReport:
    """Re-simulate every corpus entry against ``cca`` and report score deltas.

    ``mode`` restricts the replay to one fuzzing mode ("link", "traffic" or
    "loss").  The batch goes through the usual evaluation backend, so a
    process pool parallelises large-corpus replays just like a fuzzing run.
    """
    factory = cca_factory(cca)
    # Mode-filter on the index so non-matching entries' trace files are
    # never read; fingerprint order keeps the report deterministic.
    entries = [
        corpus.get(fingerprint)
        for fingerprint, row in sorted(corpus.index_rows().items())
        if mode is None or row["mode"] == mode
    ]
    jobs = [
        EvaluationJob(
            factory,
            entry.sim_config(),
            entry.trace,
            make_score_function(entry.objective or DEFAULT_OBJECTIVE, entry.mode),
        )
        for entry in entries
    ]
    owns_backend = backend is None
    backend = backend or SerialBackend()
    try:
        outcomes = backend.evaluate_batch(jobs)
    finally:
        if owns_backend:
            backend.close()
    rows = [
        ReplayRow(
            fingerprint=entry.fingerprint,
            scenario_id=entry.scenario_id,
            origin_cca=entry.cca,
            objective=entry.objective or DEFAULT_OBJECTIVE,
            original_score=entry.score,
            replay_score=score.total,
            summary=dict(summary),
        )
        for entry, (score, summary) in zip(entries, outcomes)
    ]
    return ReplayReport(replay_cca=cca, rows=rows)
