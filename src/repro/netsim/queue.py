"""Drop-tail FIFO gateway queue.

The paper's network model (section 3.1) uses a single gateway with a
fixed-size drop-tail FIFO queue shared by the flow under test and the cross
traffic.  This module implements exactly that queue, with per-flow drop
accounting and optional depth sampling for analysis.

Depth samples are kept in two parallel columns (times, depths) because one
sample is taken per enqueue/dequeue/drop — building a tuple for each was a
measurable slice of the per-packet cost.  ``depth_samples`` materialises the
``(time, depth)`` pairs on demand.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .packet import Packet


class DropTailQueue:
    """Fixed-capacity FIFO queue with tail drops.

    Parameters
    ----------
    capacity_packets:
        Maximum number of packets held (the paper fixes the bottleneck
        buffer size; the default of 60 packets is roughly 1.5x the
        bandwidth-delay product of the paper's 12 Mbps / 40 ms RTT setup).
    on_enqueue:
        Optional callback invoked as ``on_enqueue(packet, now)`` when a packet
        is admitted; used by the link to kick service on an idle link.
    sample_depth:
        Record a (time, depth) sample per enqueue/dequeue/drop.  Disabled by
        fuzzing runs (``record_series=False``), which never read the series.
    """

    __slots__ = (
        "capacity",
        "_queue",
        "_on_enqueue",
        "drops",
        "enqueued",
        "_sample_depth",
        "_depth_times",
        "_depth_values",
    )

    def __init__(
        self,
        capacity_packets: int = 60,
        on_enqueue: Optional[Callable[[Packet, float], None]] = None,
        sample_depth: bool = True,
    ) -> None:
        if capacity_packets <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity_packets
        self._queue: Deque[Packet] = deque()
        self._on_enqueue = on_enqueue
        self.drops: Dict[str, int] = {}
        self.enqueued: Dict[str, int] = {}
        self._sample_depth = sample_depth
        self._depth_times: List[float] = []
        self._depth_values: List[int] = []

    def set_enqueue_callback(self, callback: Callable[[Packet, float], None]) -> None:
        """Install the callback fired on each successful enqueue."""
        self._on_enqueue = callback

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def depth_samples(self) -> List[Tuple[float, int]]:
        """(time, depth) samples, one per enqueue/dequeue/drop."""
        return list(zip(self._depth_times, self._depth_values))

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Attempt to admit ``packet`` at time ``now``.

        Returns ``True`` if admitted, ``False`` if tail-dropped.
        """
        queue = self._queue
        flow = packet.flow
        if len(queue) >= self.capacity:
            self.drops[flow] = self.drops.get(flow, 0) + 1
            if self._sample_depth:
                self._depth_times.append(now)
                self._depth_values.append(len(queue))
            return False
        packet.enqueue_time = now
        queue.append(packet)
        self.enqueued[flow] = self.enqueued.get(flow, 0) + 1
        if self._sample_depth:
            self._depth_times.append(now)
            self._depth_values.append(len(queue))
        if self._on_enqueue is not None:
            self._on_enqueue(packet, now)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the head-of-line packet, or ``None`` if empty."""
        queue = self._queue
        if not queue:
            return None
        packet = queue.popleft()
        packet.dequeue_time = now
        if self._sample_depth:
            self._depth_times.append(now)
            self._depth_values.append(len(queue))
        return packet

    def peek(self) -> Optional[Packet]:
        """Return the head-of-line packet without removing it."""
        return self._queue[0] if self._queue else None

    def total_drops(self) -> int:
        return sum(self.drops.values())

    def drops_for(self, flow: str) -> int:
        return self.drops.get(flow, 0)
