"""Attack-robustness validation over a perturbation matrix.

A trace that only wins under the exact conditions the GA searched is easy to
over-trust (the benchmarking literature's core complaint about adversarial
CC findings).  The validator re-scores an attack across a matrix of
perturbed runs — RTT, bandwidth and queue-capacity jitter, time-shifted
copies of the trace, and staggered sender start times — and reports which
fraction of the matrix the attack survives.

The simulator is deterministic and consumes no randomness, so "different
seeds" are realised as sender start-time offsets: each offset changes the
phase relationship between the flow under test and the trace, which is
exactly the run-to-run variation a testbed would produce.

Every cell is one :class:`~repro.exec.EvaluationJob`; the whole matrix goes
to the backend as a single batch, so a process pool evaluates the matrix in
parallel just like a GA generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..exec.workers import EvaluationJob
from ..netsim.simulation import CcaFactory, SimulationConfig
from ..scoring.base import ScoreFunction
from ..traces.trace import LinkTrace, PacketTrace
from .evaluation import BatchEvaluator
from .minimize import observed_retention, retention_floor


def shift_trace(trace: PacketTrace, delta: float) -> PacketTrace:
    """Cyclically shift every event by ``delta`` seconds (mod duration).

    Cyclic (rather than clamped) shifting preserves the event count, so
    shifted link traces keep their bandwidth budget and shifted traffic
    traces their packet budget.
    """
    duration = trace.duration
    return trace.with_timestamps(sorted((t + delta) % duration for t in trace.timestamps))


@dataclass
class RobustnessConfig:
    """The perturbation matrix and the survival criterion."""

    bandwidth_factors: Tuple[float, ...] = (0.8, 0.9, 1.1, 1.25)
    rtt_factors: Tuple[float, ...] = (0.5, 1.5, 2.0)
    queue_factors: Tuple[float, ...] = (0.5, 0.75, 1.5)
    time_shifts: Tuple[float, ...] = (-0.1, 0.05, 0.1)          #: seconds
    sender_start_offsets: Tuple[float, ...] = (0.05, 0.1, 0.2)  #: the "seeds"
    retention: float = 0.7                 #: score fraction a cell must keep

    def __post_init__(self) -> None:
        if not 0.0 < self.retention <= 1.0:
            raise ValueError("retention must be in (0, 1]")
        for factors in (self.bandwidth_factors, self.rtt_factors, self.queue_factors):
            if any(f <= 0 for f in factors):
                raise ValueError("perturbation factors must be positive")

    def cell_count(self) -> int:
        return (
            len(self.bandwidth_factors)
            + len(self.rtt_factors)
            + len(self.queue_factors)
            + len(self.time_shifts)
            + len(self.sender_start_offsets)
        )


@dataclass
class RobustnessCell:
    """One perturbed run: what changed, how the attack scored, did it hold."""

    dimension: str
    label: str
    score: float
    retention: float                       #: observed score retention vs baseline
    held: bool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "dimension": self.dimension,
            "label": self.label,
            "score": self.score,
            "retention": round(self.retention, 4),
            "held": self.held,
        }


@dataclass
class RobustnessReport:
    """Survival of one attack across the whole perturbation matrix."""

    baseline_score: float
    retention_bound: float
    cells: List[RobustnessCell] = field(default_factory=list)

    @property
    def robustness_score(self) -> float:
        """Fraction of perturbed cells where the attack held (0..1)."""
        if not self.cells:
            return 1.0
        return sum(1 for cell in self.cells if cell.held) / len(self.cells)

    def by_dimension(self) -> Dict[str, Dict[str, Any]]:
        """Per-dimension breakdown: held/total and the worst observed cell."""
        grouped: Dict[str, List[RobustnessCell]] = {}
        for cell in self.cells:
            grouped.setdefault(cell.dimension, []).append(cell)
        breakdown: Dict[str, Dict[str, Any]] = {}
        for dimension in sorted(grouped):
            cells = grouped[dimension]
            worst = min(cells, key=lambda c: c.retention)
            breakdown[dimension] = {
                "held": sum(1 for c in cells if c.held),
                "total": len(cells),
                "worst_label": worst.label,
                "worst_retention": round(worst.retention, 4),
            }
        return breakdown

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline_score": self.baseline_score,
            "retention_bound": self.retention_bound,
            "robustness_score": round(self.robustness_score, 4),
            "by_dimension": self.by_dimension(),
            "cells": [cell.as_dict() for cell in self.cells],
        }


def _scaled_queue(capacity: int, factor: float) -> int:
    return max(1, int(round(capacity * factor)))


def validate_robustness(
    trace: PacketTrace,
    cca_factory: CcaFactory,
    sim_config: SimulationConfig,
    score_function: ScoreFunction,
    *,
    evaluator: Optional[BatchEvaluator] = None,
    config: Optional[RobustnessConfig] = None,
) -> RobustnessReport:
    """Score ``trace`` across the perturbation matrix around ``sim_config``."""
    config = config or RobustnessConfig()
    evaluator = evaluator or BatchEvaluator()

    cells: List[Tuple[str, str, PacketTrace, SimulationConfig]] = []
    if not isinstance(trace, LinkTrace):
        # A link trace IS the service curve: the simulator never reads
        # bottleneck_rate_mbps when one is supplied, so bandwidth cells
        # would silently replicate the baseline and inflate the score.
        for factor in config.bandwidth_factors:
            cells.append(
                (
                    "bandwidth",
                    f"x{factor:g}",
                    trace,
                    sim_config.with_overrides(
                        bottleneck_rate_mbps=sim_config.bottleneck_rate_mbps * factor
                    ),
                )
            )
    for factor in config.rtt_factors:
        cells.append(
            (
                "rtt",
                f"x{factor:g}",
                trace,
                sim_config.with_overrides(
                    propagation_delay=sim_config.propagation_delay * factor
                ),
            )
        )
    for factor in config.queue_factors:
        cells.append(
            (
                "queue",
                f"x{factor:g}",
                trace,
                sim_config.with_overrides(
                    queue_capacity=_scaled_queue(sim_config.queue_capacity, factor)
                ),
            )
        )
    for delta in config.time_shifts:
        cells.append(("time_shift", f"{delta:+g}s", shift_trace(trace, delta), sim_config))
    for offset in config.sender_start_offsets:
        cells.append(
            (
                "sender_start",
                f"+{offset:g}s",
                trace,
                sim_config.with_overrides(
                    sender_start_time=sim_config.sender_start_time + offset
                ),
            )
        )

    # Baseline first, then every perturbed cell, all in one backend batch.
    jobs = [EvaluationJob(cca_factory, sim_config, trace, score_function)]
    jobs.extend(
        EvaluationJob(cca_factory, cell_config, cell_trace, score_function)
        for _, _, cell_trace, cell_config in cells
    )
    outcomes = evaluator.evaluate(jobs)
    baseline = outcomes[0][0].total
    floor = retention_floor(baseline, config.retention)

    report = RobustnessReport(baseline_score=baseline, retention_bound=config.retention)
    for (dimension, label, _, _), (score, _) in zip(cells, outcomes[1:]):
        report.cells.append(
            RobustnessCell(
                dimension=dimension,
                label=label,
                score=score.total,
                retention=observed_retention(baseline, score.total),
                held=score.total >= floor,
            )
        )
    return report
