"""Tests for the exec subsystem: backend equivalence and exact cache accounting.

The determinism contract is the load-bearing property: for a fixed seed the
GA must produce bit-identical histories no matter which backend evaluates the
traces, because all randomness lives in the coordinating process and the
simulator consumes none.
"""

from __future__ import annotations

import functools
import pickle

import pytest

from repro.core import CCFuzz, FuzzConfig
from repro.exec import (
    BACKENDS,
    EvaluationJob,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    TraceCache,
    cca_identity,
    create_backend,
    evaluate_job,
)
from repro.netsim import SimulationConfig
from repro.scoring import LowUtilizationScore, ScoreFunction
from repro.tcp import Cubic, Reno
from repro.traces import LossTrace, TrafficTrace, TrafficTraceGenerator


def tiny_config(mode: str, **overrides) -> FuzzConfig:
    params = dict(
        mode=mode,
        population_size=4,
        generations=3,
        duration=1.0,
        average_rate_mbps=3.0,
        max_traffic_packets=40,
        max_losses=5,
        seed=13,
    )
    params.update(overrides)
    return FuzzConfig(**params)


def history_signature(result):
    """Everything a generation reports, for exact cross-backend comparison."""
    return [
        (
            stats.generation,
            stats.best_fitness,
            stats.mean_fitness,
            stats.top_k_mean_fitness,
            stats.evaluations,
            stats.cache_hits,
            tuple(stats.per_island_best),
            tuple(sorted(stats.best_summary.items())),
        )
        for stats in result.generations
    ]


class TestBackendEquivalence:
    @pytest.mark.parametrize("mode", ["link", "traffic", "loss"])
    def test_all_backends_identical_histories(self, mode):
        results = {}
        for backend in BACKENDS:
            config = tiny_config(mode, backend=backend, workers=2)
            results[backend] = CCFuzz(Reno, config=config).run()
        serial = results["serial"]
        for backend in ("thread", "process"):
            other = results[backend]
            assert history_signature(other) == history_signature(serial), backend
            assert other.best_fitness == serial.best_fitness
            assert other.total_evaluations == serial.total_evaluations
            assert other.best_trace.fingerprint() == serial.best_trace.fingerprint()

    def test_injected_backend_is_used_and_not_closed(self):
        backend = ThreadBackend(workers=2)
        fuzzer = CCFuzz(Reno, config=tiny_config("traffic"), backend=backend)
        fuzzer.run()
        # The run used the injected pool and must not shut down a
        # caller-owned backend.
        assert backend._executor is not None
        backend.close()
        assert backend._executor is None

    def test_batch_results_preserve_input_order(self):
        generator = TrafficTraceGenerator(duration=1.0, max_packets=30, seed=3)
        traces = generator.generate_population(6)
        score_function = ScoreFunction(performance=LowUtilizationScore())
        jobs = [
            EvaluationJob(Reno, SimulationConfig(duration=1.0), trace, score_function)
            for trace in traces
        ]
        expected = [evaluate_job(job) for job in jobs]
        with ThreadBackend(workers=3) as threaded:
            assert threaded.evaluate_batch(jobs) == expected
        with ProcessPoolBackend(workers=2) as pooled:
            assert pooled.evaluate_batch(jobs) == expected

    def test_empty_batch(self):
        for backend in (SerialBackend(), ThreadBackend(workers=1)):
            with backend:
                assert backend.evaluate_batch([]) == []

    def test_partial_cca_factory_job_is_picklable(self):
        job = EvaluationJob(
            cca_factory=functools.partial(Cubic, ns3_slow_start_bug=True),
            sim_config=SimulationConfig(duration=1.0),
            trace=TrafficTrace(timestamps=[0.1, 0.5], duration=1.0, max_packets=5),
            score_function=ScoreFunction(performance=LowUtilizationScore()),
        )
        restored = pickle.loads(pickle.dumps(job))
        assert restored.trace.fingerprint() == job.trace.fingerprint()
        assert evaluate_job(restored) == evaluate_job(job)


class TestCreateBackend:
    def test_names_map_to_classes(self):
        assert isinstance(create_backend("serial"), SerialBackend)
        assert isinstance(create_backend("thread", workers=2), ThreadBackend)
        backend = create_backend("process", workers=2)
        assert isinstance(backend, ProcessPoolBackend)
        backend.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            create_backend("quantum")

    @pytest.mark.parametrize("workers", [0, -1])
    def test_invalid_workers_rejected(self, workers):
        with pytest.raises(ValueError, match="workers"):
            create_backend("thread", workers=workers)
        with pytest.raises(ValueError, match="workers"):
            ThreadBackend(workers=workers)
        with pytest.raises(ValueError, match="workers"):
            ProcessPoolBackend(workers=workers)

    def test_process_chunking_covers_batch(self):
        backend = ProcessPoolBackend(workers=2)
        assert backend._chunk_size(1) == 1
        assert backend._chunk_size(8) == 1
        assert backend._chunk_size(80) == 10
        fixed = ProcessPoolBackend(workers=2, chunk_size=5)
        assert fixed._chunk_size(1000) == 5


class TestTraceCache:
    def make_key(self, seed: int):
        trace = TrafficTrace(timestamps=[0.1 * seed], duration=1.0, max_packets=5)
        return TraceCache.make_key(trace, "reno", SimulationConfig(duration=1.0))

    def test_hit_and_miss_counting_is_exact(self):
        from repro.scoring.base import Score

        cache = TraceCache()
        key = self.make_key(1)
        assert cache.get(key) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(key, Score(total=1.0, performance=1.0), {"x": 1})
        for lookup in range(3):
            score, summary = cache.get(key)
            assert score.total == 1.0
            assert summary == {"x": 1}
        assert (cache.hits, cache.misses) == (3, 1)
        assert cache.hit_rate == pytest.approx(0.75)

    def test_cached_summary_is_isolated_from_callers(self):
        from repro.scoring.base import Score

        cache = TraceCache()
        key = self.make_key(1)
        cache.put(key, Score(total=1.0, performance=1.0), {"x": 1})
        _, summary = cache.get(key)
        summary["x"] = 99
        assert cache.get(key)[1] == {"x": 1}

    def test_key_distinguishes_trace_cca_and_config(self):
        trace_a = TrafficTrace(timestamps=[0.1], duration=1.0, max_packets=5)
        trace_b = TrafficTrace(timestamps=[0.2], duration=1.0, max_packets=5)
        config = SimulationConfig(duration=1.0)
        base = TraceCache.make_key(trace_a, "reno", config)
        assert TraceCache.make_key(trace_b, "reno", config) != base
        assert TraceCache.make_key(trace_a, "cubic", config) != base
        assert TraceCache.make_key(trace_a, "reno", config.with_overrides(queue_capacity=10)) != base

    def test_lru_eviction(self):
        from repro.scoring.base import Score

        cache = TraceCache(max_entries=2)
        keys = [self.make_key(i) for i in range(3)]
        for index, key in enumerate(keys):
            cache.put(key, Score(total=float(index), performance=float(index)), {})
        assert len(cache) == 2
        assert cache.evictions == 1
        assert keys[0] not in cache
        assert keys[1] in cache and keys[2] in cache

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            TraceCache(max_entries=0)


class TestFuzzerCacheIntegration:
    def test_elite_reevaluations_drop_to_zero(self):
        config = tiny_config("traffic", generations=5, k_elite=2)
        fuzzer = CCFuzz(Reno, config=config)
        result = fuzzer.run()
        # Elites are cloned unevaluated and must all be cache hits: the
        # simulator only ever runs for the initial population plus the new
        # offspring of each later generation.
        later_generations = result.generations[1:]
        assert all(stats.cache_hits >= config.k_elite for stats in later_generations)
        max_simulations = config.population_size + len(later_generations) * (
            config.population_size - config.k_elite
        )
        assert result.total_evaluations <= max_simulations
        assert result.cache_hits >= config.k_elite * len(later_generations)
        assert result.cache_stats["hits"] == result.cache_hits

    def test_shared_cache_across_runs_skips_known_traces(self):
        cache = TraceCache()
        config = tiny_config("traffic")
        first = CCFuzz(Reno, config=config, cache=cache).run()
        second = CCFuzz(Reno, config=tiny_config("traffic"), cache=cache).run()
        # Identical seed: the second run's whole trajectory is cache-served.
        assert second.total_evaluations == 0
        assert second.best_fitness == first.best_fitness

    def test_shared_cache_never_mixes_cca_variants(self):
        from repro.tcp import Bbr

        buggy = cca_identity(Bbr())
        fixed = cca_identity(Bbr(probe_rtt_on_rto=True))
        assert buggy != fixed
        assert buggy.startswith("bbr:") and fixed.startswith("bbr:")
        # Same constructor arguments -> same identity, across instances.
        assert cca_identity(Bbr()) == buggy
        assert cca_identity(functools.partial(Bbr, probe_rtt_on_rto=True)()) == fixed

        cache = TraceCache()
        config = tiny_config("traffic")
        CCFuzz(Bbr, config=config, cache=cache).run()
        fixed_run = CCFuzz(
            functools.partial(Bbr, probe_rtt_on_rto=True),
            config=tiny_config("traffic"),
            cache=cache,
        ).run()
        # The fixed-BBR run must re-simulate everything, not reuse buggy-BBR scores.
        assert fixed_run.total_evaluations > 0

    def test_shared_cache_never_mixes_score_functions(self):
        from repro.scoring import MinimalTrafficScore

        light = ScoreFunction(
            performance=LowUtilizationScore(), trace=MinimalTrafficScore(), trace_weight=1e-3
        )
        heavy = ScoreFunction(
            performance=LowUtilizationScore(), trace=MinimalTrafficScore(), trace_weight=10.0
        )
        assert light.fingerprint() != heavy.fingerprint()
        # Same configuration across instances -> same fingerprint.
        assert light.fingerprint() == ScoreFunction(
            performance=LowUtilizationScore(), trace=MinimalTrafficScore(), trace_weight=1e-3
        ).fingerprint()

        cache = TraceCache()
        config = tiny_config("traffic")
        first = CCFuzz(Reno, config=config, score_function=light, cache=cache).run()
        second = CCFuzz(
            Reno, config=tiny_config("traffic"), score_function=heavy, cache=cache
        ).run()
        # The differently-scored run must re-simulate, not reuse fitnesses.
        assert second.total_evaluations > 0
        fresh = CCFuzz(Reno, config=tiny_config("traffic"), score_function=heavy).run()
        assert second.best_fitness == fresh.best_fitness
        assert second.best_fitness != first.best_fitness

    def test_external_evaluator_not_cached_by_default(self):
        from repro.scoring.base import Score

        calls = []

        def noisy_evaluator(trace):
            calls.append(trace)
            fitness = float(len(calls))  # deliberately nondeterministic
            return Score(total=fitness, performance=fitness), {}

        fuzzer = CCFuzz(Reno, config=tiny_config("traffic"), evaluator=noisy_evaluator)
        assert fuzzer.cache is None
        result = fuzzer.run()
        assert result.total_evaluations == len(calls)
        # An explicit cache opts back in for evaluators known to be pure.
        cached = CCFuzz(
            Reno, config=tiny_config("traffic"), evaluator=noisy_evaluator, cache=TraceCache()
        )
        assert cached.cache is not None

    def test_default_cache_is_bounded(self):
        fuzzer = CCFuzz(Reno, config=tiny_config("traffic"))
        assert fuzzer.cache.max_entries >= 4096

    def test_cache_disabled_gives_identical_history(self):
        cached = CCFuzz(Reno, config=tiny_config("traffic")).run()
        uncached = CCFuzz(Reno, config=tiny_config("traffic", use_cache=False)).run()
        assert [s.best_fitness for s in cached.generations] == [
            s.best_fitness for s in uncached.generations
        ]
        assert uncached.cache_hits == 0
        assert uncached.cache_stats == {}
