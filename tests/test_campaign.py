"""Tests for the campaign subsystem: spec, corpus, scheduler, replay."""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CorpusStore,
    GaBudget,
    NetworkCondition,
    mode_of_trace,
    read_campaign_report,
    replay_corpus,
)
from repro.core.fuzzer import CCFuzz, FuzzConfig
from repro.traces.trace import LinkTrace, LossTrace, TrafficTrace

TINY_BUDGET = {"population_size": 4, "generations": 2, "duration": 1.0}


def tiny_spec(**overrides) -> CampaignSpec:
    payload = {
        "name": "test",
        "ccas": ["reno", "cubic"],
        "modes": ["traffic"],
        "objectives": ["throughput"],
        "conditions": [{"name": "base"}, {"name": "shallow", "queue_capacity": 20}],
        "budget": dict(TINY_BUDGET),
        "seed": 7,
        "seed_limit": 3,
    }
    payload.update(overrides)
    return CampaignSpec.from_dict(payload)


def traffic_trace(times, duration=1.0) -> TrafficTrace:
    return TrafficTrace(timestamps=times, duration=duration, max_packets=max(len(times), 8))


class TestSpec:
    def test_expand_is_full_cross_product_in_order(self):
        spec = tiny_spec()
        scenarios = spec.expand()
        assert len(scenarios) == spec.scenario_count == 4
        assert [s.scenario_id for s in scenarios] == [
            "reno/traffic/throughput/base",
            "reno/traffic/throughput/shallow",
            "cubic/traffic/throughput/base",
            "cubic/traffic/throughput/shallow",
        ]

    def test_scenario_seed_is_stable_under_matrix_growth(self):
        # Adding a CCA must not reshuffle existing scenarios' GA seeds.
        small = {s.scenario_id: s.seed for s in tiny_spec().expand()}
        grown = {s.scenario_id: s.seed for s in tiny_spec(ccas=["reno", "cubic", "bbr"]).expand()}
        for scenario_id, seed in small.items():
            assert grown[scenario_id] == seed

    def test_scenario_builds_configs_from_condition(self):
        scenario = tiny_spec().expand()[1]
        sim = scenario.sim_config()
        assert sim.queue_capacity == 20
        assert sim.duration == 1.0
        config = scenario.fuzz_config()
        assert isinstance(config, FuzzConfig)
        assert config.sim.queue_capacity == 20
        assert config.seed == scenario.seed

    def test_json_roundtrip(self):
        spec = tiny_spec()
        clone = CampaignSpec.from_json(spec.to_json())
        assert clone.to_dict() == spec.to_dict()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"ccas": ["no-such-cca"]},
            {"ccas": []},
            {"modes": ["warp"]},
            {"objectives": ["vibes"]},
            {"conditions": [{"name": "base"}, {"name": "base"}]},
            {"budget": {"population_size": 1}},
            {"backend": "quantum"},
        ],
    )
    def test_invalid_specs_rejected(self, overrides):
        with pytest.raises(ValueError):
            tiny_spec(**overrides)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign spec keys"):
            CampaignSpec.from_dict({"name": "x", "turbo": True})

    def test_condition_validation(self):
        with pytest.raises(ValueError):
            NetworkCondition(bottleneck_rate_mbps=-1)
        with pytest.raises(ValueError):
            GaBudget(generations=0)


class TestCorpusStore:
    def test_orphan_tmp_files_swept_on_load(self, tmp_path):
        """A crash between atomic_json_dump's temp write and its rename
        leaves ``*.tmp`` litter; reopening the corpus must sweep it."""
        store = CorpusStore(str(tmp_path / "corpus"))
        trace = traffic_trace([0.1, 0.2, 0.3])
        store.add(trace, scenario_id="s", cca="reno", objective="throughput", score=1.0)
        orphans = [
            os.path.join(store.path, "index.json.tmp"),
            os.path.join(store.path, "entries", "deadbeef.json.tmp"),
        ]
        for path in orphans:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("{garbage")
        reloaded = CorpusStore(store.path)
        assert len(reloaded) == 1  # real entries untouched
        for path in orphans:
            assert not os.path.exists(path)

    def test_add_and_reload_roundtrip(self, tmp_path):
        store = CorpusStore(str(tmp_path / "corpus"))
        trace = traffic_trace([0.1, 0.2, 0.3])
        assert store.add(trace, scenario_id="reno/traffic/throughput/base",
                         cca="reno", objective="throughput", score=-1.5,
                         condition={"queue_capacity": 60})
        assert len(store) == 1
        reloaded = CorpusStore(str(tmp_path / "corpus"))
        assert len(reloaded) == 1
        entry = reloaded.get(trace.fingerprint())
        assert entry.cca == "reno"
        assert entry.score == -1.5
        assert entry.trace.timestamps == trace.timestamps
        assert isinstance(entry.trace, TrafficTrace)

    def test_duplicate_traces_are_deduped(self, tmp_path):
        store = CorpusStore(str(tmp_path / "corpus"))
        trace = traffic_trace([0.1, 0.2])
        assert store.add(trace, scenario_id="a", score=-5.0)
        assert not store.add(trace.copy(), scenario_id="b", score=-9.0)
        assert len(store) == 1
        entry = store.get(trace.fingerprint())
        assert entry.rediscoveries == 1
        # The worse rediscovery must not overwrite the recorded best score.
        assert entry.score == -5.0
        assert entry.scenario_id == "a"

    def test_rediscovery_with_higher_score_upgrades_provenance(self, tmp_path):
        store = CorpusStore(str(tmp_path / "corpus"))
        trace = traffic_trace([0.4])
        store.add(trace, scenario_id="a", cca="reno", score=-9.0)
        store.add(trace.copy(), scenario_id="b", cca="cubic", score=-1.0)
        entry = store.get(trace.fingerprint())
        assert entry.score == -1.0
        assert entry.scenario_id == "b"
        assert entry.cca == "cubic"

    def test_seeds_for_filters_mode_and_duration(self, tmp_path):
        store = CorpusStore(str(tmp_path / "corpus"))
        match = traffic_trace([0.1, 0.5])
        store.add(match, scenario_id="m", score=-1.0)
        store.add(traffic_trace([0.2], duration=2.0), scenario_id="wrong-duration", score=-0.5)
        store.add(LinkTrace(timestamps=[0.1], duration=1.0), scenario_id="wrong-mode", score=-0.5)
        seeds = store.seeds_for("traffic", 1.0, limit=10)
        assert [seed.fingerprint() for seed in seeds] == [match.fingerprint()]

    def test_seeds_for_prefers_builtins_then_best_scores(self, tmp_path):
        store = CorpusStore(str(tmp_path / "corpus"))
        builtin = traffic_trace([0.9])
        good = traffic_trace([0.1])
        bad = traffic_trace([0.2])
        store.add(bad, scenario_id="bad", score=-8.0)
        store.add(good, scenario_id="good", score=-1.0)
        store.add(builtin, scenario_id="builtin/x", origin="builtin")
        seeds = store.seeds_for("traffic", 1.0, limit=2)
        assert [s.fingerprint() for s in seeds] == [builtin.fingerprint(), good.fingerprint()]

    def test_builtin_reregistration_is_idempotent(self, tmp_path):
        # Each campaign run re-registers the builtin library; that must not
        # inflate rediscoveries (which counts genuine re-finds by a search).
        store = CorpusStore(str(tmp_path / "corpus"))
        trace = traffic_trace([0.7])
        store.add(trace, scenario_id="builtin/x", origin="builtin")
        assert not store.add(trace.copy(), scenario_id="builtin/x", origin="builtin")
        assert store.get(trace.fingerprint()).rediscoveries == 0

    def test_seeds_for_prefers_matching_objective(self, tmp_path):
        # Scores from different objectives are on incomparable scales, so a
        # scenario's own objective wins over a "higher" cross-objective score.
        store = CorpusStore(str(tmp_path / "corpus"))
        delay_find = traffic_trace([0.1])
        throughput_find = traffic_trace([0.2])
        store.add(delay_find, scenario_id="d", objective="delay", score=100.0)
        store.add(throughput_find, scenario_id="t", objective="throughput", score=-3.0)
        seeds = store.seeds_for("traffic", 1.0, limit=1, objective="throughput")
        assert [s.fingerprint() for s in seeds] == [throughput_find.fingerprint()]

    def test_rediscovery_under_different_objective_keeps_provenance(self, tmp_path):
        # A 'delay' score (seconds, positive) must never displace a
        # 'throughput' score (negated Mbps): the scales are incomparable.
        store = CorpusStore(str(tmp_path / "corpus"))
        trace = traffic_trace([0.5])
        store.add(trace, scenario_id="t", objective="throughput", score=-6.0)
        store.add(trace.copy(), scenario_id="d", objective="delay", score=0.25)
        entry = store.get(trace.fingerprint())
        assert entry.objective == "throughput"
        assert entry.score == -6.0
        assert entry.rediscoveries == 1

    def test_link_seeds_require_matching_bottleneck_rate(self, tmp_path):
        # A link trace IS the service curve: a 5 Mbps curve seeded into a
        # 12 Mbps search would be the degenerate "just lower the bandwidth"
        # solution, so rate-incompatible link entries are filtered out.
        store = CorpusStore(str(tmp_path / "corpus"))
        slow = LinkTrace(timestamps=[i * 0.0024 for i in range(417)], duration=1.0)   # ~5 Mbps
        fast = LinkTrace(timestamps=[i * 0.001 for i in range(1000)], duration=1.0)   # 12 Mbps
        store.add(slow, scenario_id="slow", score=-1.0)
        store.add(fast, scenario_id="fast", score=-9.0)
        seeds = store.seeds_for("link", 1.0, limit=10, bottleneck_rate_mbps=12.0)
        assert [s.fingerprint() for s in seeds] == [fast.fingerprint()]
        # Without a rate constraint both remain available.
        assert len(store.seeds_for("link", 1.0, limit=10)) == 2

    def test_rediscovery_count_persists_across_reload(self, tmp_path):
        # The upgrade path is write-through: a rediscovery must land in the
        # entry file AND the index row, and survive a cold reload.
        store = CorpusStore(str(tmp_path / "corpus"))
        trace = traffic_trace([0.15, 0.35])
        store.add(trace, scenario_id="a", objective="throughput", score=-5.0)
        store.add(trace.copy(), scenario_id="b", objective="throughput", score=-7.0)
        store.add(trace.copy(), scenario_id="c", objective="throughput", score=-2.0)
        reloaded = CorpusStore(str(tmp_path / "corpus"))
        entry = reloaded.get(trace.fingerprint())
        assert entry.rediscoveries == 2
        assert entry.score == -2.0                       # best like-for-like find
        assert entry.scenario_id == "c"
        assert reloaded.index_rows()[trace.fingerprint()]["rediscoveries"] == 2

    def test_unscored_entry_upgraded_by_first_scored_rediscovery(self, tmp_path):
        # A builtin entry has score None; any scored re-find is comparable
        # and must attach the discovery provenance while origin stays put.
        store = CorpusStore(str(tmp_path / "corpus"))
        trace = traffic_trace([0.45])
        store.add(trace, scenario_id="builtin/x", origin="builtin")
        store.add(
            trace.copy(), scenario_id="reno/traffic/throughput/base",
            cca="reno", objective="throughput", score=-3.0,
        )
        entry = store.get(trace.fingerprint())
        assert entry.origin == "builtin"
        assert entry.rediscoveries == 1
        assert entry.score == -3.0
        assert entry.cca == "reno"
        assert entry.scenario_id == "reno/traffic/throughput/base"

    def test_rediscovery_under_different_condition_keeps_provenance(self, tmp_path):
        # Same objective but different network condition: still incomparable
        # scales, so the recorded best must not be displaced.
        store = CorpusStore(str(tmp_path / "corpus"))
        trace = traffic_trace([0.25])
        store.add(trace, scenario_id="a", objective="throughput", score=-6.0,
                  condition={"queue_capacity": 60})
        store.add(trace.copy(), scenario_id="b", objective="throughput", score=-1.0,
                  condition={"queue_capacity": 20})
        entry = store.get(trace.fingerprint())
        assert entry.rediscoveries == 1
        assert entry.score == -6.0
        assert entry.condition == {"queue_capacity": 60}

    def test_triage_reregistration_is_idempotent(self, tmp_path):
        # Re-triaging a corpus re-adds the same minimized variants; like the
        # builtin bootstrap, that must not count as a rediscovery.
        store = CorpusStore(str(tmp_path / "corpus"))
        trace = traffic_trace([0.65])
        store.add(trace, scenario_id="triage/abc", origin="triage", derived_from="abc")
        assert not store.add(trace.copy(), scenario_id="triage/abc", origin="triage",
                             derived_from="abc")
        assert store.get(trace.fingerprint()).rediscoveries == 0

    def test_legacy_entry_payload_loads_without_triage_fields(self):
        # Corpora written before the triage subsystem have no derived_from /
        # triage keys; they must load with empty defaults.
        from repro.campaign import CorpusEntry

        trace = traffic_trace([0.1])
        payload = {
            "fingerprint": trace.fingerprint(),
            "mode": "traffic",
            "scenario_id": "a",
            "trace": trace.to_dict(),
        }
        entry = CorpusEntry.from_dict(payload)
        assert entry.derived_from == ""
        assert entry.triage == {}

    def test_annotate_triage_replaces_and_persists(self, tmp_path):
        # A verdict describes one triage run; a re-triage (e.g. --force with
        # different engines) must not inherit stale keys from the last run.
        store = CorpusStore(str(tmp_path / "corpus"))
        trace = traffic_trace([0.55])
        store.add(trace, scenario_id="a", score=-1.0)
        store.annotate_triage(trace.fingerprint(), {"classification": "generic"})
        store.annotate_triage(trace.fingerprint(), {"robustness_score": 0.75})
        reloaded = CorpusStore(str(tmp_path / "corpus"))
        entry = reloaded.get(trace.fingerprint())
        assert entry.triage == {"robustness_score": 0.75}

    def test_mode_of_trace(self):
        assert mode_of_trace(traffic_trace([0.1])) == "traffic"
        assert mode_of_trace(LinkTrace(timestamps=[0.1], duration=1.0)) == "link"
        assert mode_of_trace(LossTrace(timestamps=[0.1], duration=1.0)) == "loss"

    def test_corpus_directory_layout(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        store = CorpusStore(str(corpus_dir))
        trace = traffic_trace([0.3])
        store.add(trace, scenario_id="x", score=0.0)
        assert (corpus_dir / "index.json").exists()
        entry_file = corpus_dir / "entries" / f"{trace.fingerprint()}.json"
        assert entry_file.exists()
        payload = json.loads(entry_file.read_text())
        assert payload["trace"]["type"] == "TrafficTrace"


class TestCampaignRunner:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        corpus_dir = str(tmp_path_factory.mktemp("campaign") / "corpus")
        spec = tiny_spec()
        corpus = CorpusStore(corpus_dir)
        result = CampaignRunner(spec, corpus).run()
        return spec, corpus, result

    def test_runs_every_scenario(self, campaign):
        spec, _, result = campaign
        assert [o.scenario.scenario_id for o in result.outcomes] == [
            s.scenario_id for s in spec.expand()
        ]
        for outcome in result.outcomes:
            assert outcome.evaluations > 0
            assert outcome.best_fitness > float("-inf")

    def test_builtin_attacks_registered(self, campaign):
        _, corpus, result = campaign
        assert result.attacks_registered > 0
        origins = {entry.origin for entry in corpus.entries()}
        assert "builtin" in origins

    def test_harvest_populates_corpus_with_provenance(self, campaign):
        _, corpus, result = campaign
        fuzz_entries = [e for e in corpus.entries() if e.origin == "fuzz"]
        assert fuzz_entries
        scenario_ids = {o.scenario.scenario_id for o in result.outcomes}
        for entry in fuzz_entries:
            assert entry.scenario_id in scenario_ids
            assert entry.score is not None
            assert entry.cca in ("reno", "cubic")
            assert entry.condition["queue_capacity"] in (20, 60)

    def test_later_scenarios_are_seeded_from_corpus(self, campaign):
        _, _, result = campaign
        # The first scenario sees only builtins; every later one must have
        # been seeded (builtins + earlier discoveries).
        assert all(o.seeds_injected > 0 for o in result.outcomes)

    def test_shared_cache_is_actually_shared(self, campaign):
        _, _, result = campaign
        # Cross-scenario seeding re-injects traces the previous scenarios
        # already evaluated; with one shared cache some of those lookups hit.
        assert sum(o.cache_hits for o in result.outcomes) > 0
        assert result.cache_stats["hits"] > 0

    def test_campaign_is_deterministic(self, campaign, tmp_path):
        spec, corpus, result = campaign
        corpus2 = CorpusStore(str(tmp_path / "corpus2"))
        result2 = CampaignRunner(tiny_spec(), corpus2).run()
        assert [o.best_fitness for o in result2.outcomes] == [
            o.best_fitness for o in result.outcomes
        ]
        assert sorted(corpus2.fingerprints()) == sorted(corpus.fingerprints())

    def test_parallel_matches_with_snapshot_seeding(self, tmp_path):
        # Parallel scheduling draws seeds from the launch snapshot, so two
        # parallel runs of the same spec are identical to each other.  The
        # thread backend makes the coordinator threads share one lazily
        # created pool, exercising the backend's init lock.
        results = []
        for name in ("p1", "p2"):
            corpus = CorpusStore(str(tmp_path / name))
            results.append(
                CampaignRunner(
                    tiny_spec(backend="thread", workers=2), corpus, max_parallel=2
                ).run()
            )
        assert [o.best_fitness for o in results[0].outcomes] == [
            o.best_fitness for o in results[1].outcomes
        ]

    def test_to_dict_is_json_serialisable(self, campaign):
        _, _, result = campaign
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["spec"]["name"] == "test"
        assert len(payload["scenarios"]) == 4


class TestCorpusSeededFuzzing:
    def test_seed_traces_enter_initial_population(self, tmp_path):
        store = CorpusStore(str(tmp_path / "corpus"))
        seed_a = traffic_trace([0.10, 0.55, 0.80])
        seed_b = traffic_trace([0.25, 0.30])
        store.add(seed_a, scenario_id="a", score=-1.0)
        store.add(seed_b, scenario_id="b", score=-2.0)
        seeds = store.seeds_for("traffic", 1.0, limit=2)
        from repro.tcp.cca import cca_factory

        config = FuzzConfig(mode="traffic", population_size=4, generations=1, duration=1.0, seed=0)
        result = CCFuzz(cca_factory("reno"), config=config, seed_traces=seeds).run()
        # Both injected traces are visible in the run's provenance and, with a
        # single generation, still present in the final population.
        assert sorted(result.seed_fingerprints) == sorted(
            [seed_a.fingerprint(), seed_b.fingerprint()]
        )
        seeded = [ind for ind in result.final_population if ind.origin == "seed"]
        assert {ind.trace.fingerprint() for ind in seeded} == {
            seed_a.fingerprint(),
            seed_b.fingerprint(),
        }

    def test_unseeded_run_reports_no_seeds(self):
        from repro.tcp.cca import cca_factory

        config = FuzzConfig(mode="traffic", population_size=4, generations=1, duration=1.0)
        result = CCFuzz(cca_factory("reno"), config=config).run()
        assert result.seed_fingerprints == []


class TestReplay:
    @pytest.fixture(scope="class")
    def seeded_corpus(self, tmp_path_factory):
        corpus = CorpusStore(str(tmp_path_factory.mktemp("replay") / "corpus"))
        CampaignRunner(
            tiny_spec(ccas=["reno"], conditions=[{"name": "base"}]), corpus
        ).run()
        return corpus

    def test_replay_scores_every_entry(self, seeded_corpus):
        report = replay_corpus(seeded_corpus, "cubic")
        assert report.entry_count == len(seeded_corpus)
        for row in report.rows:
            assert isinstance(row.replay_score, float)

    def test_replay_is_deterministic(self, seeded_corpus):
        first = replay_corpus(seeded_corpus, "bbr")
        second = replay_corpus(seeded_corpus, "bbr")
        assert [row.replay_score for row in first.rows] == [
            row.replay_score for row in second.rows
        ]

    def test_replay_against_origin_cca_reproduces_recorded_scores(self, seeded_corpus):
        # Re-simulating a discovery against the CCA and condition it was
        # found with must give back exactly the recorded fitness.
        report = replay_corpus(seeded_corpus, "reno", mode="traffic")
        originals = {
            row.fingerprint: row for row in report.rows if row.original_score is not None
        }
        assert originals
        for row in originals.values():
            if row.origin_cca == "reno":
                assert row.replay_score == pytest.approx(row.original_score)
                assert row.delta == pytest.approx(0.0)

    def test_mode_filter(self, seeded_corpus):
        report = replay_corpus(seeded_corpus, "reno", mode="link")
        assert all(
            seeded_corpus.get(row.fingerprint).mode == "link" for row in report.rows
        )
        assert report.entry_count < len(seeded_corpus)
