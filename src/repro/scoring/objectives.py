"""Named fuzzing objectives.

An *objective* is a shorthand for a full :class:`ScoreFunction`: which
performance score the search maximises, plus the minimality trace score that
traffic mode adds as a tie-breaker.  The CLI, the campaign subsystem and the
tests all resolve objectives through this module so "throughput" means the
same scoring configuration everywhere (and therefore hashes to the same
cache/score fingerprint).
"""

from __future__ import annotations

from .base import ScoreFunction
from .performance import HighDelayScore, HighLossScore, LowUtilizationScore
from .trace_score import MinimalTrafficScore

#: Objective names accepted by ``--objective`` and campaign specs.
OBJECTIVES = ("throughput", "delay", "loss")


def make_score_function(objective: str, mode: str) -> ScoreFunction:
    """Build the score function for an objective/mode pair.

    ``objective`` picks the performance component ("throughput" rewards *low*
    utilisation, "delay" high queueing delay, "loss" high loss); traffic mode
    adds the minimal-trace score with a small weight so minimality breaks
    ties without competing with the Mbps-scale performance component.
    """
    if objective not in OBJECTIVES:
        raise ValueError(f"objective must be one of {OBJECTIVES}, got {objective!r}")
    performance = {
        "throughput": LowUtilizationScore(),
        "delay": HighDelayScore(),
        "loss": HighLossScore(),
    }[objective]
    trace_score = MinimalTrafficScore() if mode == "traffic" else None
    return ScoreFunction(performance=performance, trace=trace_score, trace_weight=1e-3)
