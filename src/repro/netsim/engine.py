"""Discrete-event simulation engine.

The engine is a classic event-heap scheduler: callbacks are scheduled at
absolute simulation times and executed in time order.  Ties are broken by
insertion order so repeated runs with the same inputs are fully
deterministic, which is a hard requirement for the genetic algorithm
(identical traces must produce identical scores across generations,
see paper section 3.6).

Two fast paths keep the per-event overhead low, because every GA generation
bottoms out in millions of these events:

* ``schedule_fast`` / ``schedule_at_fast`` skip the :class:`EventHandle`
  allocation for the ~95% of events that are never cancelled (link
  departures, packet deliveries, one-shot timers).
* :class:`FifoLane` bypasses the heap entirely for event streams whose
  times are pushed in nondecreasing order (bottleneck service completions,
  propagation-delayed deliveries, returning ACKs, pre-sorted cross-traffic
  injections).  Lanes are merged with the heap at pop time by the global
  ``(time, seq)`` key, so the execution order is exactly what a pure-heap
  scheduler would produce — including tie-breaks.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

#: One scheduled event: (time, insertion seq, handle-or-None, callback, args).
_Entry = Tuple[float, int, Optional["EventHandle"], Callable[..., None], tuple]


class EventHandle:
    """Handle for a scheduled event, allowing cancellation.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  This keeps cancellation O(1), which matters because TCP
    retransmission timers are rescheduled on nearly every ACK.
    """

    __slots__ = ("time", "cancelled", "_scheduler", "_pending")

    def __init__(self, time: float, scheduler: Optional["EventScheduler"] = None) -> None:
        self.time = time
        self.cancelled = False
        self._scheduler = scheduler
        self._pending = True

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when due."""
        self.cancelled = True
        if self._pending:
            self._pending = False
            if self._scheduler is not None:
                self._scheduler._live -= 1


class LazyTimer:
    """A restartable timer that avoids one heap event per restart.

    TCP restarts its retransmission and delayed-ACK timers far more often
    than they fire.  A ``LazyTimer`` keeps the authoritative ``(deadline,
    seq)`` pair on the timer itself: restarting is an attribute update plus a
    sequence-number claim, and a heap *bookkeeping entry* is only pushed when
    no pending entry is early enough to wake the scheduler by the deadline.
    A popped bookkeeping entry whose key does not match the live deadline
    re-pushes itself at the current key and is not executed or counted.

    Equivalence with cancel+reschedule: :meth:`arm` claims the same global
    sequence number the replacement ``schedule()`` call would have consumed,
    and the callback runs exactly when an entry with key ``(deadline, seq)``
    pops — so execution order, tie-breaks included, is identical.
    """

    #: Mirrors ``EventHandle.cancelled`` so the run loop's dead-entry check
    #: can treat both entry kinds uniformly (a timer entry is never skipped
    #: by that check; staleness is resolved in ``_on_pop``).
    cancelled = False

    __slots__ = ("_scheduler", "_callback", "_deadline", "_seq", "_entry_times")

    def __init__(self, scheduler: "EventScheduler", callback: Callable[[], None]) -> None:
        self._scheduler = scheduler
        self._callback = callback
        self._deadline: Optional[float] = None
        self._seq = -1
        self._entry_times: List[float] = []

    @property
    def deadline(self) -> Optional[float]:
        """The live deadline, or None when the timer is not armed."""
        return self._deadline

    def arm(self, deadline: float) -> None:
        """(Re)start the timer to fire at absolute time ``deadline``."""
        scheduler = self._scheduler
        if deadline < scheduler.now:
            raise ValueError(
                f"cannot arm timer at {deadline:.6f}, current time is {scheduler.now:.6f}"
            )
        if self._deadline is None:
            scheduler._live += 1
        self._deadline = deadline
        self._seq = scheduler._seq
        scheduler._seq += 1
        entry_times = self._entry_times
        if not entry_times or min(entry_times) > deadline:
            heapq.heappush(scheduler._heap, (deadline, self._seq, self, None, None))
            entry_times.append(deadline)

    def disarm(self) -> None:
        """Stop the timer; any pending bookkeeping entries die silently."""
        if self._deadline is not None:
            self._deadline = None
            self._scheduler._live -= 1

    def _on_pop(self, time: float, seq: int) -> bool:
        """Handle a popped bookkeeping entry; True when the timer must fire."""
        try:
            self._entry_times.remove(time)
        except ValueError:  # pragma: no cover - defensive
            pass
        deadline = self._deadline
        if deadline is None:
            return False
        if deadline == time and seq == self._seq:
            # Fired at the live key: consume the timer (the callback may
            # re-arm it).
            self._deadline = None
            return True
        # Stale entry; make sure some entry wakes the scheduler at (or
        # before) the moved deadline, then resolve again on that pop.
        entry_times = self._entry_times
        if not entry_times or min(entry_times) > deadline:
            heapq.heappush(self._scheduler._heap, (deadline, self._seq, self, None, None))
            entry_times.append(deadline)
        return False


class FifoLane:
    """A monotone fast lane of events, merged with the scheduler's heap.

    A lane accepts events whose absolute times are pushed in nondecreasing
    order (each stream of fixed-delay or pre-sorted events satisfies this).
    Pushing and popping are O(1) deque operations instead of O(log n) heap
    operations, and no :class:`EventHandle` is allocated.

    Lanes share the scheduler's insertion-sequence counter, so merging the
    lane heads with the heap head by ``(time, seq)`` reproduces the exact
    execution order — tie-breaks included — of scheduling every event
    through the heap.

    Create lanes via :meth:`EventScheduler.fifo_lane` before calling
    :meth:`EventScheduler.run`.
    """

    __slots__ = ("_scheduler", "_events", "_last_time")

    def __init__(self, scheduler: "EventScheduler") -> None:
        self._scheduler = scheduler
        self._events: Deque[_Entry] = deque()
        self._last_time = 0.0

    def __len__(self) -> int:
        return len(self._events)

    def push(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Append ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule event in the past (delay={delay})")
        scheduler = self._scheduler
        time = scheduler.now + delay
        if time < self._last_time:
            raise ValueError(
                f"lane events must be pushed in time order "
                f"(got {time:.6f} after {self._last_time:.6f})"
            )
        self._last_time = time
        self._events.append((time, scheduler._seq, None, callback, args))
        scheduler._seq += 1
        scheduler._live += 1

    def push_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Append ``callback(*args)`` to fire at absolute simulation ``time``."""
        scheduler = self._scheduler
        if time < scheduler.now:
            raise ValueError(
                f"cannot schedule event at {time:.6f}, current time is {scheduler.now:.6f}"
            )
        if time < self._last_time:
            raise ValueError(
                f"lane events must be pushed in time order "
                f"(got {time:.6f} after {self._last_time:.6f})"
            )
        self._last_time = time
        self._events.append((time, scheduler._seq, None, callback, args))
        scheduler._seq += 1
        scheduler._live += 1

    def clear(self) -> int:
        """Drop every not-yet-fired event in this lane; returns how many."""
        dropped = len(self._events)
        self._scheduler._live -= dropped
        self._events.clear()
        return dropped


class EventScheduler:
    """Priority-queue based discrete event scheduler.

    Example
    -------
    >>> sched = EventScheduler()
    >>> fired = []
    >>> _ = sched.schedule(1.0, fired.append, "a")
    >>> _ = sched.schedule(0.5, fired.append, "b")
    >>> sched.run(until=2.0)
    >>> fired
    ['b', 'a']
    """

    __slots__ = ("now", "_seq", "_heap", "_lanes", "_live", "_running", "_stopped")

    def __init__(self) -> None:
        #: Current simulation time in seconds.  A plain attribute rather than
        #: a property: it is read on nearly every event callback, and the
        #: property indirection was measurable.  Treat as read-only.
        self.now = 0.0
        self._seq = 0
        self._heap: List[_Entry] = []
        self._lanes: List[FifoLane] = []
        self._live = 0
        self._running = False
        self._stopped = False

    def fifo_lane(self) -> FifoLane:
        """Create a new monotone fast lane merged into this scheduler.

        Lanes must be created before :meth:`run` starts (the run loop
        snapshots the lane set once for speed).
        """
        if self._running:
            raise RuntimeError("cannot create a lane while the scheduler is running")
        lane = FifoLane(self)
        self._lanes.append(lane)
        return lane

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time:.6f}, current time is {self.now:.6f}"
            )
        handle = EventHandle(time, self)
        heapq.heappush(self._heap, (time, self._seq, handle, callback, args))
        self._seq += 1
        self._live += 1
        return handle

    def schedule_fast(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Like :meth:`schedule` but without a cancellation handle.

        Use for the common case of events that are never cancelled; it skips
        one object allocation per event.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule event in the past (delay={delay})")
        self.schedule_at_fast(self.now + delay, callback, *args)

    def schedule_at_fast(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Like :meth:`schedule_at` but without a cancellation handle."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time:.6f}, current time is {self.now:.6f}"
            )
        heapq.heappush(self._heap, (time, self._seq, None, callback, args))
        self._seq += 1
        self._live += 1

    def timer(self, callback: Callable[[], None]) -> LazyTimer:
        """Create a restartable :class:`LazyTimer` bound to this scheduler."""
        return LazyTimer(self, callback)

    def stop(self) -> None:
        """Request that :meth:`run` return before processing further events."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Return the time of the next pending (non-cancelled) event, if any."""
        heap = self._heap
        while heap:
            head = heap[0]
            handle = head[2]
            if handle is not None and handle.cancelled:
                heapq.heappop(heap)
                continue
            if head[3] is None:
                # Lazy-timer bookkeeping entry: dead (disarmed) or stale
                # (deadline moved) entries are not real wake times — prune
                # them, re-pushing at the live key when needed, exactly as
                # the run loop's pop would.
                timer = handle
                if timer._deadline is None or (head[0], head[1]) != (
                    timer._deadline,
                    timer._seq,
                ):
                    heapq.heappop(heap)
                    timer._on_pop(head[0], head[1])
                    continue
            break
        best: Optional[float] = heap[0][0] if heap else None
        for lane in self._lanes:
            if lane._events:
                head_time = lane._events[0][0]
                if best is None or head_time < best:
                    best = head_time
        return best

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in time order.

        Parameters
        ----------
        until:
            Stop once the next event would be strictly after this time.  The
            clock is advanced to ``until`` when the horizon is reached.
        max_events:
            Safety valve: stop after this many events have been executed.

        Returns
        -------
        int
            The number of events executed.
        """
        if self._running:
            raise RuntimeError("scheduler is already running")
        self._running = True
        self._stopped = False
        executed = 0
        heap = self._heap
        lanes = [lane._events for lane in self._lanes]
        heappop = heapq.heappop
        horizon = float("inf") if until is None else until
        budget = -1 if max_events is None else max_events
        try:
            while executed != budget and not self._stopped:
                # Select the earliest event across the heap and every lane.
                # Entries compare by (time, seq); seqs are unique, so the
                # comparison never reaches the non-orderable fields.
                entry = heap[0] if heap else None
                winner = None
                for lane_events in lanes:
                    if lane_events:
                        head = lane_events[0]
                        if entry is None or head < entry:
                            entry = head
                            winner = lane_events
                if entry is None:
                    break
                time, seq, handle, callback, args = entry
                if handle is not None and handle.cancelled:
                    heappop(heap)
                    continue
                if time > horizon:
                    break
                if callback is None:
                    # Lazy-timer bookkeeping entry (heap-only): resolve it;
                    # stale/dead entries are not executed or counted.
                    heappop(heap)
                    if handle._on_pop(time, seq):
                        self._live -= 1
                        self.now = time
                        handle._callback()
                        executed += 1
                    continue
                if winner is None:
                    heappop(heap)
                else:
                    winner.popleft()
                if handle is not None:
                    handle._pending = False
                self._live -= 1
                self.now = time
                callback(*args)
                executed += 1
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False
        return executed

    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events.

        Maintained as a live counter (incremented on schedule, decremented on
        cancel/execution), so this is O(1) instead of an O(n) heap walk.
        """
        return self._live
