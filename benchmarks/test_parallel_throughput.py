"""Throughput of the parallel + memoized evaluation backend.

Records evaluations/sec and cache-hit rate for the serial and process
backends, and checks the determinism contract under timing pressure: the
parallel run must reproduce the serial run's history bit-for-bit.  The
speed-up factor is only asserted on machines with enough cores (CI laptops
and 1-vCPU containers would measure pure pool overhead).

``-k smoke`` selects a seconds-scale variant suitable for CI smoke runs.
"""

from __future__ import annotations

import os
import time

from conftest import print_rows, run_once

from repro.core import CCFuzz, FuzzConfig
from repro.tcp import Reno

#: Assert real speed-up only when the hardware can provide one.
MIN_CORES_FOR_SPEEDUP = 4


def make_config(**overrides) -> FuzzConfig:
    params = dict(
        mode="traffic",
        population_size=12,
        generations=3,
        duration=1.0,
        max_traffic_packets=60,
        seed=21,
    )
    params.update(overrides)
    return FuzzConfig(**params)


def timed_run(config: FuzzConfig):
    started = time.perf_counter()
    result = CCFuzz(Reno, config=config).run()
    return result, time.perf_counter() - started


def history(result):
    return [
        (stats.best_fitness, stats.mean_fitness, stats.evaluations, stats.cache_hits)
        for stats in result.generations
    ]


def throughput_row(label, result, elapsed):
    return {
        "backend": label,
        "wall_clock_s": elapsed,
        "simulations": result.total_evaluations,
        "evals_per_sec": result.total_evaluations / elapsed,
        "cache_hits": result.cache_hits,
        "cache_hit_rate": result.cache_stats.get("hit_rate", 0.0),
    }


def test_smoke_parallel_throughput(benchmark):
    """CI smoke: process backend matches serial output on a tiny run."""
    serial, serial_elapsed = timed_run(make_config(population_size=6, generations=2))

    def parallel_run():
        return timed_run(
            make_config(population_size=6, generations=2, backend="process", workers=2)
        )

    parallel, parallel_elapsed = run_once(benchmark, parallel_run)
    assert history(parallel) == history(serial)
    assert parallel.best_fitness == serial.best_fitness
    assert parallel.total_evaluations == serial.total_evaluations
    print_rows(
        "smoke: serial vs process (6 traces, 2 generations)",
        [
            throughput_row("serial", serial, serial_elapsed),
            throughput_row("process x2", parallel, parallel_elapsed),
        ],
    )


def test_parallel_speedup_and_cache_rate(benchmark):
    """Serial vs process wall-clock on a population worth parallelising."""
    workers = min(4, os.cpu_count() or 1)
    serial, serial_elapsed = timed_run(make_config())

    def parallel_run():
        return timed_run(make_config(backend="process", workers=workers))

    parallel, parallel_elapsed = run_once(benchmark, parallel_run)

    assert history(parallel) == history(serial)
    assert parallel.best_fitness == serial.best_fitness

    # The cache must eliminate every elite re-evaluation: simulations per
    # later generation never exceed the non-elite offspring count.
    config = make_config()
    for stats in serial.generations[1:]:
        assert stats.evaluations <= config.population_size - config.k_elite
        assert stats.cache_hits >= config.k_elite

    rows = [
        throughput_row("serial", serial, serial_elapsed),
        throughput_row(f"process x{workers}", parallel, parallel_elapsed),
    ]
    print_rows("parallel throughput (12 traces, 3 generations)", rows)

    # Timing on shared CI runners is too noisy for a hard gate; opt in on
    # dedicated multi-core hardware to enforce the acceptance target.
    if os.environ.get("REPRO_ASSERT_SPEEDUP") and (os.cpu_count() or 1) >= MIN_CORES_FOR_SPEEDUP:
        # Acceptance target: parallel wall-clock at most 0.45x serial.
        assert parallel_elapsed <= 0.45 * serial_elapsed
