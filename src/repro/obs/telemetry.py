"""Campaign telemetry: the glue between the scheduler and the sinks.

One :class:`CampaignTelemetry` instance rides along with a
:class:`~repro.campaign.scheduler.CampaignRunner`.  The runner calls plain
observer hooks at phase boundaries (campaign start/end, scenario start/end,
every evaluated generation); the telemetry object turns them into

* ``metrics.jsonl`` records (plus throttled full registry snapshots),
* campaign/scenario spans with per-phase counter attribution,
* an optional single-line live progress report on stderr,
* and, at campaign end, the Prometheus export and ``run_manifest.json``.

Everything here is strictly observational: hooks read counters the search
already maintains and write to files the search never reads, so a campaign
with telemetry enabled is bit-identical to one without (the golden
bit-identity test pins this).  A disabled instance turns every hook into a
no-op so call sites never branch.
"""

from __future__ import annotations

import contextlib
import sys
import time
from typing import IO, Any, Dict, Iterable, Optional

from .manifest import build_manifest, write_manifest
from .metrics import get_registry
from .sinks import DEFAULT_SNAPSHOT_INTERVAL_S, MetricsJsonlSink, write_prometheus
from .spans import PhaseTracer


class CampaignTelemetry:
    """Streams one campaign's telemetry into its corpus directory."""

    def __init__(
        self,
        corpus_dir: str,
        *,
        enabled: bool = True,
        progress_stream: Optional[IO[str]] = None,
        interval_s: float = DEFAULT_SNAPSHOT_INTERVAL_S,
        worker_id: Optional[str] = None,
    ) -> None:
        self.enabled = enabled
        self.corpus_dir = str(corpus_dir)
        #: Fleet worker identity stamped into every emitted record (``worker``
        #: field), so ``repro-campaign status`` can render per-worker rows.
        self.worker_id = worker_id
        self._progress_stream = progress_stream
        self._started_at: Optional[float] = None
        self._scenario_totals: Dict[str, int] = {}
        self._scenario_progress: Dict[str, int] = {}
        self._completed = 0
        self._total_scenarios = 0
        self._baseline_evals = 0.0
        self._started_clock = 0.0
        self._progress_dirty = False
        self._sink: Optional[MetricsJsonlSink] = None
        if enabled:
            self._sink = MetricsJsonlSink(self.corpus_dir, interval_s=interval_s)
            self.tracer: Optional[PhaseTracer] = PhaseTracer(on_close=self._span_closed)
        else:
            self.tracer = None

    # ------------------------------------------------------------------ #
    # Hooks the scheduler calls
    # ------------------------------------------------------------------ #

    def campaign_started(
        self,
        spec,
        *,
        resumed: bool = False,
        completed: Iterable[str] = (),
    ) -> None:
        if not self.enabled:
            return
        scenarios = spec.expand()
        completed = sorted(completed)
        self._started_at = time.time()
        self._started_clock = time.monotonic()
        self._total_scenarios = len(scenarios)
        self._completed = len(completed)
        self._baseline_evals = get_registry().counter("fuzzer.evaluations")
        for scenario in scenarios:
            self._scenario_totals[scenario.scenario_id] = scenario.budget.generations
        assert self._sink is not None
        self._emit(
            "campaign_resume" if resumed else "campaign_start",
            {
                "campaign": spec.name,
                "scenarios": [s.scenario_id for s in scenarios],
                "generations_per_scenario": {
                    s.scenario_id: s.budget.generations for s in scenarios
                },
                "completed": completed,
            },
        )

    def scenario_span(self, scenario):
        """Context manager wrapping one scenario's execution."""
        if not self.enabled:
            return contextlib.nullcontext()
        assert self._sink is not None
        self._emit(
            "scenario_state",
            {"scenario": scenario.scenario_id, "state": "running"},
        )
        assert self.tracer is not None
        return self.tracer.span("scenario", scenario.scenario_id)

    def generation(self, scenario, stats) -> None:
        """Per-generation observer (wired as the fuzzer's progress hook)."""
        if not self.enabled:
            return
        self._scenario_progress[scenario.scenario_id] = stats.generation + 1
        assert self._sink is not None
        self._emit(
            "generation",
            {
                "scenario": scenario.scenario_id,
                "generation": stats.generation,
                "generations_total": self._scenario_totals.get(scenario.scenario_id),
                "best_fitness": stats.best_fitness,
                "evaluations": stats.evaluations,
                "cache_hits": stats.cache_hits,
                "cells": stats.behavior_cells,
            },
        )
        self._sink.maybe_snapshot(get_registry())
        self._emit_progress(scenario, stats)

    def scenario_completed(self, outcome) -> None:
        if not self.enabled:
            return
        self._completed += 1
        self._scenario_progress.pop(outcome.scenario.scenario_id, None)
        assert self._sink is not None
        self._emit(
            "scenario_state",
            {
                "scenario": outcome.scenario.scenario_id,
                "state": "complete",
                "outcome": outcome.summary_row(),
            },
        )

    def campaign_completed(self, spec, result=None, *, resumed: bool = False) -> None:
        """Final flush: completion record, Prometheus export, manifest."""
        if not self.enabled:
            return
        self._clear_progress_line()
        registry = get_registry()
        snapshot = registry.snapshot()
        phases = self.tracer.summary() if self.tracer is not None else {}
        assert self._sink is not None
        self._sink.maybe_snapshot(registry, force=True)
        self._emit(
            "campaign_complete",
            {
                "campaign": spec.name,
                "scenarios_completed": self._completed,
                "phases": phases,
            },
        )
        write_prometheus(snapshot, self.corpus_dir)
        write_manifest(
            build_manifest(
                spec,
                result=result,
                phases=phases,
                metrics=snapshot,
                started_at=self._started_at,
                resumed=resumed,
            ),
            self.corpus_dir,
        )

    def _emit(self, record_type: str, payload: Dict[str, Any]) -> None:
        assert self._sink is not None
        if self.worker_id is not None:
            payload = dict(payload)
            payload["worker"] = self.worker_id
        self._sink.emit(record_type, payload)

    def close(self) -> None:
        """Idempotent; the scheduler's finally-block calls this."""
        self._clear_progress_line()
        if self._sink is not None:
            self._sink.close()

    # ------------------------------------------------------------------ #
    # Live progress line
    # ------------------------------------------------------------------ #

    def _emit_progress(self, scenario, stats) -> None:
        stream = self._progress_stream
        if stream is None:
            return
        elapsed = time.monotonic() - self._started_clock
        evals = get_registry().counter("fuzzer.evaluations") - self._baseline_evals
        rate = evals / elapsed if elapsed > 0 else 0.0
        total = self._scenario_totals.get(scenario.scenario_id)
        total_text = f"/{total}" if total else ""
        line = (
            f"[{scenario.scenario_id}] "
            f"scenario {self._completed + 1}/{self._total_scenarios} "
            f"gen {stats.generation + 1}{total_text} "
            f"best={stats.best_fitness:.4f} "
            f"evals={int(evals)} ({rate:.1f}/s) cells={stats.behavior_cells}"
        )
        if stream.isatty():
            # One live line, redrawn in place; padded so a shorter update
            # fully overwrites the previous one.
            stream.write("\r" + line.ljust(100))
            self._progress_dirty = True
        else:
            stream.write(line + "\n")
        stream.flush()

    def _clear_progress_line(self) -> None:
        stream = self._progress_stream
        if stream is not None and self._progress_dirty:
            stream.write("\n")
            stream.flush()
            self._progress_dirty = False

    # ------------------------------------------------------------------ #
    # Span sink
    # ------------------------------------------------------------------ #

    def _span_closed(self, record: Dict[str, Any]) -> None:
        if self._sink is not None:
            self._emit("span", record)
