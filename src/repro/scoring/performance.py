"""Performance scores: quantify how badly the CCA behaved in a run.

All scores are oriented so that **higher = worse CCA behaviour = fitter
trace** (the genetic algorithm maximises them).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..netsim.packet import CCA_FLOW
from ..netsim.simulation import SimulationResult
from .base import PerformanceScore
from .windowed import bottom_fraction_mean, percentile


class LowUtilizationScore(PerformanceScore):
    """Rewards traces that force the CCA's throughput down (section 3.4).

    The score is the negated mean of the lowest ``bottom_fraction`` of
    windowed-throughput samples.  Using the worst windows rather than the
    whole-run average keeps trace diversity: traces that only hurt the flow
    early do not dominate.
    """

    name = "low_utilization"

    def __init__(self, window: float = 0.25, bottom_fraction: float = 0.2) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.bottom_fraction = bottom_fraction

    def __call__(self, result: SimulationResult) -> float:
        series = result.windowed_throughput(window=self.window)
        rates = [rate for _, rate in series]
        return -bottom_fraction_mean(rates, self.bottom_fraction)


class WholeRunThroughputScore(PerformanceScore):
    """Negated whole-run throughput — the naive alternative the paper argues
    against; provided for the ablation benchmarks."""

    name = "whole_run_throughput"

    def __call__(self, result: SimulationResult) -> float:
        return -result.throughput_mbps()


class HighDelayScore(PerformanceScore):
    """Rewards traces that cause persistently high queueing delay.

    The paper's BBR-delay experiment (section 4.3) scores traces by the 10th
    percentile of queueing delay: a high *low* percentile means the delay was
    high essentially all the time, not just in a spike.
    """

    name = "high_delay"

    def __init__(self, percentile_rank: float = 10.0, flow: str = CCA_FLOW) -> None:
        if not 0 <= percentile_rank <= 100:
            raise ValueError("percentile_rank must be in [0, 100]")
        self.percentile_rank = percentile_rank
        self.flow = flow

    def __call__(self, result: SimulationResult) -> float:
        delays = [delay for _, delay in result.queueing_delays(self.flow)]
        if not delays:
            return 0.0
        return percentile(delays, self.percentile_rank)


class HighLossScore(PerformanceScore):
    """Rewards traces that force a high loss rate on the flow under test."""

    name = "high_loss"

    def __call__(self, result: SimulationResult) -> float:
        return result.loss_rate(CCA_FLOW)


class RetransmissionScore(PerformanceScore):
    """Rewards traces that force many retransmissions (wasted work)."""

    name = "retransmissions"

    def __init__(self, normalise: bool = True) -> None:
        self.normalise = normalise

    def __call__(self, result: SimulationResult) -> float:
        retransmissions = result.sender_stats.retransmissions
        if not self.normalise:
            return float(retransmissions)
        sent = max(result.sender_stats.segments_sent, 1)
        return retransmissions / sent


class StallScore(PerformanceScore):
    """Rewards traces that starve the flow of progress for long stretches.

    Measures the longest interval with no delivered CCA packet, normalised by
    the run duration.  A permanently stalled BBR scores close to 1.
    """

    name = "stall"

    def __call__(self, result: SimulationResult) -> float:
        # The monitor maintains the longest delivery gap incrementally (the
        # same accumulator backs behavior-signature extraction), so this is
        # O(1) instead of a rescan of the egress stream.  A flow with no
        # deliveries stalls for the whole run.
        duration = result.duration
        return result.monitor.max_egress_gap(CCA_FLOW, duration) / duration


class CompositeScore(PerformanceScore):
    """Weighted sum of several performance scores."""

    name = "composite"

    def __init__(self, components: Sequence[Tuple[PerformanceScore, float]]) -> None:
        if not components:
            raise ValueError("composite score needs at least one component")
        self.components: List[Tuple[PerformanceScore, float]] = list(components)

    def __call__(self, result: SimulationResult) -> float:
        return sum(weight * component(result) for component, weight in self.components)
