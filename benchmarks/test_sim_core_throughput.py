"""Throughput of the simulation core itself: events/sec and packets/sec.

Unlike the paper-figure benchmarks, this file measures the *simulator fast
path* directly — the slotted event core, the streaming flow monitor and the
lazy TCP timers — in both fuzzing modes, plus one end-to-end GA smoke run.
The measured numbers are emitted to ``BENCH_sim_core.json`` (see
``conftest.sim_core_bench``) so every future PR has a machine-readable perf
trajectory to beat; the committed ``baseline`` section froze the seed-commit
numbers measured with this same harness before the fast path landed.

``-k smoke`` selects every test here (they are all seconds-scale), matching
the CI benchmark-smoke job.

Hard speed assertions are opt-in via ``REPRO_ASSERT_SPEEDUP`` (shared CI
runners are too noisy for an unconditional gate); the CI job instead compares
the fresh JSON against the committed one with a 20% tolerance using
``benchmarks/check_sim_core_regression.py``.
"""

from __future__ import annotations

import os
import time

from conftest import print_rows, run_once

from repro.attacks import builtin_attack_traces
from repro.core import CCFuzz, FuzzConfig
from repro.netsim.packet import CCA_FLOW, CROSS_FLOW
from repro.netsim.simulation import SimulationConfig, run_simulation
from repro.tcp import Reno
from repro.tcp.cca import cca_factory

#: Simulation length for the single-simulation measurements.
DURATION = 5.0

#: Timing repeats; the best (minimum) wall clock is reported.
REPEATS = 3

#: Seed-commit (PR 3, pre-fast-path) numbers, measured with this harness on
#: the reference container.  Frozen here and written into the JSON so the
#: before/after trajectory survives regeneration.
SEED_BASELINE = {
    "commit": "37efce9 (PR 3 seed, pre-fast-path)",
    "traffic_mode": {"events_per_sec": 48544.3, "packets_per_sec": 15545.7},
    "link_mode": {"events_per_sec": 26336.4, "packets_per_sec": 8270.2},
    "fuzz_smoke": {"evals_per_sec": 24.95},
}


def _measure_simulation(cca: str, *, link: bool) -> dict:
    """Best-of-N events/sec and packets/sec for one builtin-attack run."""
    traces = builtin_attack_traces(duration=DURATION)
    trace = traces["bbr-stall-link"] if link else traces["bbr-stall"]
    kwargs = (
        {"link_trace": trace.timestamps}
        if link
        else {"cross_traffic_times": trace.timestamps}
    )
    best = None
    for _ in range(REPEATS):
        config = SimulationConfig(duration=DURATION)
        started = time.perf_counter()
        result = run_simulation(cca_factory(cca), config, **kwargs)
        elapsed = time.perf_counter() - started
        packets = result.monitor.sent_count(CCA_FLOW) + result.monitor.sent_count(CROSS_FLOW)
        row = {
            "wall_clock_s": elapsed,
            "events": result.events_executed,
            "packets": packets,
            "events_per_sec": result.events_executed / elapsed,
            "packets_per_sec": packets / elapsed,
        }
        if best is None or row["wall_clock_s"] < best["wall_clock_s"]:
            best = row
    return best


def _fuzz_smoke_config() -> FuzzConfig:
    """The exact serial smoke config of ``test_parallel_throughput.py``."""
    return FuzzConfig(
        mode="traffic",
        population_size=6,
        generations=2,
        duration=1.0,
        max_traffic_packets=60,
        seed=21,
    )


def _maybe_assert_speedup(measured: float, baseline: float, factor: float) -> None:
    """Enforce the acceptance speedup only on opted-in dedicated hardware."""
    if os.environ.get("REPRO_ASSERT_SPEEDUP"):
        assert measured >= factor * baseline, (
            f"expected >= {factor}x over baseline {baseline:.1f}, got {measured:.1f}"
        )


def test_smoke_traffic_mode_events_per_sec(benchmark, sim_core_bench):
    """Traffic-fuzzing mode: BBR vs the builtin bbr-stall cross traffic."""
    sim_core_bench.setdefault("baseline", SEED_BASELINE)
    row = run_once(benchmark, _measure_simulation, "bbr", link=False)
    sim_core_bench["traffic_mode"] = row
    print_rows("sim core: traffic mode (bbr-stall, 5s)", [row])
    assert row["events"] > 1000
    _maybe_assert_speedup(
        row["events_per_sec"], SEED_BASELINE["traffic_mode"]["events_per_sec"], 2.0
    )


def test_smoke_link_mode_events_per_sec(benchmark, sim_core_bench):
    """Link-fuzzing mode: BBR vs the builtin bbr-stall-link service curve."""
    sim_core_bench.setdefault("baseline", SEED_BASELINE)
    row = run_once(benchmark, _measure_simulation, "bbr", link=True)
    sim_core_bench["link_mode"] = row
    print_rows("sim core: link mode (bbr-stall-link, 5s)", [row])
    assert row["events"] > 1000
    _maybe_assert_speedup(
        row["events_per_sec"], SEED_BASELINE["link_mode"]["events_per_sec"], 2.0
    )


def test_smoke_fuzz_end_to_end_evals_per_sec(benchmark, sim_core_bench):
    """End-to-end GA smoke: serial evaluations/sec on the shared smoke config.

    This is the acceptance metric of the fast-path work: the whole fuzzing
    loop — trace generation, simulation, scoring, caching — measured as
    evaluations per second, bit-identical to the seed GA history (asserted
    separately by ``tests/test_sim_golden.py``).
    """
    sim_core_bench.setdefault("baseline", SEED_BASELINE)

    def fuzz_run():
        best_elapsed = None
        result = None
        for _ in range(REPEATS):
            started = time.perf_counter()
            result = CCFuzz(Reno, config=_fuzz_smoke_config()).run()
            elapsed = time.perf_counter() - started
            if best_elapsed is None or elapsed < best_elapsed:
                best_elapsed = elapsed
        return result, best_elapsed

    result, elapsed = run_once(benchmark, fuzz_run)
    row = {
        "wall_clock_s": elapsed,
        "evaluations": result.total_evaluations,
        "evals_per_sec": result.total_evaluations / elapsed,
    }
    sim_core_bench["fuzz_smoke"] = row
    print_rows("sim core: fuzz smoke (Reno, 6 traces x 2 generations)", [row])
    assert result.total_evaluations > 0
    _maybe_assert_speedup(
        row["evals_per_sec"], SEED_BASELINE["fuzz_smoke"]["evals_per_sec"], 2.0
    )


def test_smoke_telemetry_overhead(benchmark, sim_core_bench):
    """Cost of the metrics instrumentation on the fuzzing hot path.

    Wall-clock A/B runs cannot resolve the true cost on shared runners (the
    instrumentation is a handful of registry calls per *simulation*, i.e.
    microseconds against ~100ms of simulating, while run-to-run jitter is
    tens of percent).  So the gated number is computed from two stable
    measurements instead:

    * ``ops_per_eval`` — registry operations a full GA evaluation performs,
      counted exactly by swapping in a counting registry for one smoke run
      (covers the sim, fuzzer, exec, cache and journal instrumentation);
    * ``per_op_cost_s`` — the cost of one registry operation, measured over
      a 200k-op tight loop (long enough that scheduler noise averages out).

    ``overhead_fraction = ops_per_eval * per_op_cost_s / cpu_s_per_eval``.
    This stays exact under noise *and* catches the failure mode the budget
    exists for: instrumenting per event instead of per simulation multiplies
    ``ops_per_eval`` by ~10^4 and blows the 2% gate immediately.  The CI
    benchmark job enforces the budget via
    ``check_sim_core_regression.py --telemetry-budget``.  A/B events/sec
    rates are still reported for eyeballing, but not gated.
    """
    import repro.obs.metrics as metrics_mod
    from repro.obs.metrics import MetricsRegistry, set_enabled

    sim_core_bench.setdefault("baseline", SEED_BASELINE)

    class CountingRegistry(MetricsRegistry):
        def __init__(self) -> None:
            super().__init__()
            self.ops = 0

        def inc(self, name, value=1):
            self.ops += 1
            super().inc(name, value)

        def gauge_set(self, name, value):
            self.ops += 1
            super().gauge_set(name, value)

        def gauge_add(self, name, delta):
            self.ops += 1
            super().gauge_add(name, delta)

        def observe(self, name, value):
            self.ops += 1
            super().observe(name, value)

    def measure() -> dict:
        # Exact op count + CPU seconds for one full GA smoke run.
        counting = CountingRegistry()
        saved = metrics_mod._REGISTRY
        metrics_mod._REGISTRY = counting
        try:
            cpu_started = time.process_time()
            result = CCFuzz(Reno, config=_fuzz_smoke_config()).run()
            cpu_s = time.process_time() - cpu_started
        finally:
            metrics_mod._REGISTRY = saved
        evaluations = result.total_evaluations
        ops_per_eval = counting.ops / evaluations
        cpu_s_per_eval = cpu_s / evaluations

        # Per-op cost over a tight loop (alternating the two hot-path ops).
        scratch = MetricsRegistry()
        loops = 100_000
        op_started = time.process_time()
        for _ in range(loops):
            scratch.inc("bench.counter", 2)
            scratch.observe("bench.histogram", 0.001)
        per_op_cost_s = (time.process_time() - op_started) / (2 * loops)

        # Informational A/B rates (noisy on shared runners; not gated).
        traces = builtin_attack_traces(duration=2.0)
        trace = traces["bbr-stall"]

        def one_run() -> float:
            config = SimulationConfig(duration=2.0)
            started = time.process_time()
            sim = run_simulation(
                cca_factory("bbr"), config, cross_traffic_times=trace.timestamps
            )
            return sim.events_executed / (time.process_time() - started)

        best_on = best_off = 0.0
        previous = set_enabled(True)
        try:
            for _ in range(REPEATS):
                set_enabled(True)
                best_on = max(best_on, one_run())
                set_enabled(False)
                best_off = max(best_off, one_run())
        finally:
            set_enabled(previous)

        return {
            "ops_per_eval": ops_per_eval,
            "per_op_cost_us": per_op_cost_s * 1e6,
            "cpu_s_per_eval": cpu_s_per_eval,
            "overhead_fraction": (ops_per_eval * per_op_cost_s) / cpu_s_per_eval,
            "events_per_sec_on": best_on,
            "events_per_sec_off": best_off,
        }

    row = run_once(benchmark, measure)
    sim_core_bench["telemetry_overhead"] = row
    print_rows("sim core: telemetry overhead (counted ops x per-op cost)", [row])
    # Per-simulation instrumentation means single-digit ops per evaluation;
    # triple digits would mean someone instrumented inside the event loop.
    assert 0 < row["ops_per_eval"] < 100
    assert row["overhead_fraction"] <= 0.02, (
        f"telemetry overhead {row['overhead_fraction']:.2%} exceeds the 2% budget"
    )
