"""The low-rate ("shrew") TCP attack of Kuzmanovic & Knightly (SIGCOMM 2003).

CC-Fuzz rediscovers this attack automatically for TCP-Reno (paper section
4.3): short periodic bursts of cross traffic, spaced at the retransmission
timeout, repeatedly cause the same packets (and their retransmissions) to be
lost, which keeps the sender in RTO backoff and pins its throughput near
zero.  This module builds the hand-crafted version of that traffic pattern so
it can serve as the known baseline the GA output is compared against.
"""

from __future__ import annotations

from typing import List

from ..traces.trace import TrafficTrace


def lowrate_attack_times(
    duration: float,
    period: float = 1.0,
    burst_packets: int = 280,
    burst_duration: float = 0.22,
    start: float = 0.5,
) -> List[float]:
    """Injection times for a periodic low-rate attack.

    Parameters
    ----------
    duration:
        Length of the attack trace in seconds.
    period:
        Spacing between bursts.  The classic attack uses the victim's minimum
        RTO (1 second in the paper's setup) so every recovery attempt runs
        into the next burst.
    burst_packets:
        Packets per burst; it must be enough to keep the bottleneck queue full
        for the whole burst so that the victim's packets *and* their fast
        retransmissions are dropped.  The default saturates the paper's
        12 Mbps / 60-packet-queue bottleneck for ~200 ms.
    burst_duration:
        Length of each burst; it must cover the victim's fast-retransmission
        window (a couple of round-trip times plus the full-queue drain time).
    start:
        Time of the first burst (after the victim's slow start has begun).
    """
    if period <= 0 or burst_duration <= 0:
        raise ValueError("period and burst_duration must be positive")
    if burst_packets <= 0:
        raise ValueError("burst_packets must be positive")
    times: List[float] = []
    burst_start = start
    while burst_start < duration:
        spacing = burst_duration / burst_packets
        times.extend(
            burst_start + i * spacing
            for i in range(burst_packets)
            if burst_start + i * spacing < duration
        )
        burst_start += period
    return times


def lowrate_attack_trace(
    duration: float,
    period: float = 1.0,
    burst_packets: int = 280,
    burst_duration: float = 0.22,
    start: float = 0.5,
    mss_bytes: int = 1500,
) -> TrafficTrace:
    """The shrew attack as a :class:`TrafficTrace` (the known baseline)."""
    times = lowrate_attack_times(
        duration=duration,
        period=period,
        burst_packets=burst_packets,
        burst_duration=burst_duration,
        start=start,
    )
    return TrafficTrace(
        timestamps=times,
        duration=duration,
        mss_bytes=mss_bytes,
        metadata={
            "kind": "traffic",
            "attack": "lowrate",
            "period": period,
            "burst_packets": burst_packets,
            "burst_duration": burst_duration,
        },
        max_packets=max(len(times), 1),
    )


def attack_rate_mbps(trace: TrafficTrace) -> float:
    """Average rate of the attack traffic — "low rate" means well below the link."""
    return trace.average_rate_mbps
