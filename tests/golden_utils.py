"""Deep, stable digests of simulation outputs.

Used by the golden regression tests (and the capture script that generated
``tests/golden_sim_results.json``) to assert that simulator optimizations
preserve bit-identical results: every derived series is hashed over its
exact float bit patterns, so even a 1-ulp drift in any metric changes the
digest.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Dict, Iterable

from repro.netsim.packet import CCA_FLOW, CROSS_FLOW
from repro.netsim.simulation import SimulationResult


def _hash_floats(values: Iterable[float]) -> str:
    flat = list(values)
    return hashlib.blake2b(
        struct.pack(f"<{len(flat)}d", *flat), digest_size=16
    ).hexdigest()


def _hash_pairs(pairs: Iterable[Any]) -> str:
    flat: list = []
    for pair in pairs:
        flat.extend(float(v) for v in pair)
    return _hash_floats(flat)


def result_digest(result: SimulationResult) -> Dict[str, Any]:
    """Everything observable about a run, hashed bit-exactly.

    Scalar fields are kept verbatim (JSON round-trips Python floats exactly);
    per-packet series are collapsed to blake2b digests over their raw double
    bit patterns.
    """
    monitor = result.monitor
    return {
        "summary": {k: v for k, v in result.summary().items()},
        "egress_times_cca": _hash_floats(monitor.egress_times(CCA_FLOW)),
        "egress_times_cross": _hash_floats(monitor.egress_times(CROSS_FLOW)),
        "ingress_times_cca": _hash_floats(monitor.ingress_times(CCA_FLOW)),
        "ingress_times_cross": _hash_floats(monitor.ingress_times(CROSS_FLOW)),
        "queueing_delays": _hash_pairs(result.queueing_delays()),
        "windowed_throughput": _hash_pairs(result.windowed_throughput(window=0.25)),
        "windowed_ingress_cross": _hash_pairs(
            monitor.windowed_rate(
                CROSS_FLOW,
                0.25,
                result.duration,
                result.config.mss_bytes,
                use_ingress=True,
            )
        ),
        "queue_depth": _hash_pairs(monitor.queue_depth),
        "cwnd_series": _hash_pairs(result.sender_stats.cwnd_series),
        "rtt_series": _hash_pairs(result.sender_stats.rtt_series),
        "loss_rate_cca": result.loss_rate(CCA_FLOW),
        "loss_rate_cross": result.loss_rate(CROSS_FLOW),
        "throughput_mbps": result.throughput_mbps(),
        "queue_drops": dict(result.queue_drops),
        "receiver_stats": dict(result.receiver_stats),
        "forced_losses": result.forced_losses,
        "link_wasted_opportunities": result.link_wasted_opportunities,
        "cross_sent": result.cross_sent,
        "cross_delivered": result.cross_delivered,
        "cross_dropped_at_queue": result.cross_dropped_at_queue,
    }
