#!/usr/bin/env python3
"""Compare how Reno, CUBIC and BBR cope with known adversarial patterns.

Exercises the public API on three scenarios the paper's introduction
motivates: a clean link, the low-rate (shrew) burst train, and the
BBR-targeted burst pattern.  Prints one metrics table per scenario so the
differences between the algorithms are easy to eyeball.

Usage:
    python examples/compare_ccas_under_attack.py [--duration SECONDS]
"""

from __future__ import annotations

import argparse

from repro import Bbr, Cubic, Reno, SimulationConfig, run_simulation
from repro.analysis import compute_metrics, format_table
from repro.attacks import bbr_stall_traffic_trace, lowrate_attack_trace

CCAS = {
    "reno": Reno,
    "cubic": Cubic,
    "bbr": Bbr,
    "bbr-fixed": lambda: Bbr(probe_rtt_on_rto=True),
}


def run_scenario(name: str, cross_times, duration: float) -> None:
    print("=" * 72)
    print(f"Scenario: {name}")
    print("=" * 72)
    config = SimulationConfig(duration=duration)
    rows = []
    for label, factory in CCAS.items():
        result = run_simulation(factory, config, cross_traffic_times=cross_times)
        metrics = compute_metrics(result)
        rows.append({
            "cca": label,
            "throughput_mbps": metrics.throughput_mbps,
            "utilization": metrics.utilization,
            "p95_delay_ms": metrics.p95_queueing_delay_ms,
            "loss_rate": metrics.loss_rate,
            "rtos": metrics.rto_count,
            "longest_stall_s": metrics.longest_stall_s,
        })
    print(format_table(rows))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=6.0)
    args = parser.parse_args()

    run_scenario("clean 12 Mbps bottleneck", None, args.duration)
    shrew = lowrate_attack_trace(duration=args.duration)
    run_scenario(
        f"low-rate burst train ({shrew.average_rate_mbps:.1f} Mbps of cross traffic)",
        shrew.timestamps,
        args.duration,
    )
    stall = bbr_stall_traffic_trace(duration=args.duration)
    run_scenario(
        f"BBR-targeted burst pattern ({stall.average_rate_mbps:.1f} Mbps of cross traffic)",
        stall.timestamps,
        args.duration,
    )


if __name__ == "__main__":
    main()
