"""Figure 4b: a link (service-curve) trace that gets BBR stuck.

Link fuzzing controls when the bottleneck serves packets while keeping the
average rate fixed at 12 Mbps.  The trace replayed here has the structure the
search converges to: service outages that cover a retransmission timeout,
with catch-up bursts preserving the packet budget.  The figure's series is
BBR's ingress/egress rate against the link's available rate.
"""

from __future__ import annotations

from conftest import print_rows, print_series, run_once

from repro.analysis import bbr_bug_evidence
from repro.attacks import bbr_stall_link_trace
from repro.netsim import CCA_FLOW, SimulationConfig, run_simulation
from repro.tcp import Bbr

DURATION = 6.0


def run_experiment():
    trace = bbr_stall_link_trace(duration=DURATION)
    config = SimulationConfig(duration=DURATION)
    attacked = run_simulation(Bbr, config, link_trace=trace.timestamps)
    clean = run_simulation(Bbr, config)
    return trace, attacked, clean


def test_fig4b_bbr_link_stall(benchmark):
    trace, attacked, clean = run_once(benchmark, run_experiment)

    print_series(
        "Fig 4b: link service rate (Mbps) offered by the adversarial trace",
        trace.windowed_rates_mbps(0.5),
    )
    print_series(
        "Fig 4b: BBR egress rate (Mbps) under the adversarial link trace",
        attacked.windowed_throughput(window=0.5, flow=CCA_FLOW),
    )
    evidence = bbr_bug_evidence(attacked)
    print_rows(
        "Fig 4b summary (paper: same stall triggered through the link schedule)",
        [
            {"run": "bbr clean", "throughput_mbps": clean.throughput_mbps()},
            {"run": "bbr adversarial link", "throughput_mbps": attacked.throughput_mbps()},
            {"run": "link average rate", "throughput_mbps": trace.average_rate_mbps},
        ],
    )
    print_rows("Fig 4b mechanism evidence", [evidence.as_dict()])

    # The trace still offers the full 12 Mbps on average (link-fuzzing
    # invariant), yet BBR delivers far less, and the loss is not explained by
    # the outages alone (which remove well under half the service time).
    assert trace.average_rate_mbps > 11.5
    assert attacked.throughput_mbps() < 0.75 * clean.throughput_mbps()
    assert evidence.rto_count >= 1
    # In link mode the estimate collapse comes from delivery-gap-poisoned
    # samples ending rounds prematurely (spurious retransmissions are not
    # always required), so the asserted footprint is the round churn plus the
    # collapsed bandwidth estimate.
    assert evidence.premature_round_ends >= 10
    assert evidence.final_bandwidth_estimate_pps < 500
