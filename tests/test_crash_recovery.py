"""Crash-recovery tests: SIGKILL a campaign, resume it, demand bit-identity.

The harness in :mod:`crashsim` runs a seeded serial campaign in a subprocess
with a SIGKILL planted at a deterministic injection point.  Each test then
resumes the wreckage in-process via :meth:`CampaignRunner.resume` and asserts
the final corpus fingerprints, behavior map and campaign summary digest are
bit-identical to an uninterrupted run of the same spec and seed.

The golden resume-equivalence test (kill after generation 1 of the first
scenario) runs in tier-1; the full injection matrix is ``slow``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.attacks import builtin_attack_traces
from repro.campaign import CampaignRunner, CampaignSpec, CorpusStore
from repro.coverage.archive import BehaviorArchive
from repro.journal import CampaignJournal

CRASHSIM = os.path.join(os.path.dirname(__file__), "crashsim.py")

SPEC_PAYLOAD = {
    "name": "crash-recovery",
    "ccas": ["reno", "cubic"],
    "modes": ["traffic"],
    "objectives": ["throughput"],
    "conditions": [{"name": "base"}],
    "budget": {"population_size": 4, "generations": 2, "duration": 1.0},
    "seed": 5,
    "seed_limit": 2,
}

N_BUILTINS = len(builtin_attack_traces(SPEC_PAYLOAD["budget"]["duration"]))


def _state_of(corpus_dir: str, result) -> dict:
    with open(BehaviorArchive.corpus_path(corpus_dir), "r", encoding="utf-8") as handle:
        behavior_map = json.load(handle)
    return {
        "digest": result.deterministic_digest(),
        "fingerprints": sorted(CorpusStore(str(corpus_dir)).fingerprints()),
        "behavior_map": behavior_map,
        "attacks_registered": result.attacks_registered,
    }


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Uninterrupted seeded run: the ground truth every resume must match."""
    corpus_dir = tmp_path_factory.mktemp("baseline") / "corpus"
    spec = CampaignSpec.from_dict(SPEC_PAYLOAD)
    result = CampaignRunner(spec, CorpusStore(str(corpus_dir))).run()
    return _state_of(str(corpus_dir), result)


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC_PAYLOAD), encoding="utf-8")
    return str(path)


def run_killed(corpus_dir: str, spec_file: str, point: str, nth: int,
               event_type: str = None) -> subprocess.CompletedProcess:
    argv = [
        sys.executable, CRASHSIM,
        "--corpus", str(corpus_dir), "--spec", spec_file,
        "--point", point, "--nth", str(nth),
    ]
    if event_type is not None:
        argv += ["--event-type", event_type]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(CRASHSIM), "..", "src")
    proc = subprocess.run(argv, env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == -signal.SIGKILL, (
        f"harness should die by SIGKILL at {point}/{nth}, got "
        f"{proc.returncode}\nstdout: {proc.stdout}\nstderr: {proc.stderr}"
    )
    return proc


def resume_and_compare(corpus_dir: str, baseline: dict) -> None:
    runner = CampaignRunner.resume(str(corpus_dir))
    result = runner.run()
    resumed = _state_of(str(corpus_dir), result)
    assert resumed["fingerprints"] == baseline["fingerprints"]
    assert resumed["behavior_map"] == baseline["behavior_map"]
    assert resumed["digest"] == baseline["digest"]
    assert resumed["attacks_registered"] == baseline["attacks_registered"]


def test_resume_equivalence_after_generation_checkpoint(tmp_path, spec_file, baseline):
    """Golden test: killed right after generation 1 of scenario 1 resumes
    into a bit-identical campaign (corpus, behavior map, summary digest)."""
    corpus_dir = tmp_path / "corpus"
    run_killed(corpus_dir, spec_file, "post-checkpoint", nth=2)
    view = CampaignJournal(CampaignJournal.corpus_path(str(corpus_dir))).replay()
    assert view.campaign is not None
    assert view.pending_checkpoints()  # scenario 1 checkpointed, not complete
    assert not view.completed
    resume_and_compare(corpus_dir, baseline)


@pytest.mark.slow
def test_resume_after_first_generation_checkpoint(tmp_path, spec_file, baseline):
    corpus_dir = tmp_path / "corpus"
    run_killed(corpus_dir, spec_file, "post-checkpoint", nth=1)
    resume_and_compare(corpus_dir, baseline)


@pytest.mark.slow
def test_resume_after_scenario_boundary_checkpoint(tmp_path, spec_file, baseline):
    # nth=3: first checkpoint of scenario 2 — scenario 1 already complete.
    corpus_dir = tmp_path / "corpus"
    run_killed(corpus_dir, spec_file, "post-checkpoint", nth=3)
    view = CampaignJournal(CampaignJournal.corpus_path(str(corpus_dir))).replay()
    assert len(view.completed) == 1
    resume_and_compare(corpus_dir, baseline)


@pytest.mark.slow
def test_resume_after_torn_append(tmp_path, spec_file, baseline):
    """Kill halfway through writing a checkpoint record: the torn tail is
    detected, skipped, and repaired; the scenario restarts from scratch."""
    corpus_dir = tmp_path / "corpus"
    run_killed(corpus_dir, spec_file, "mid-append", nth=1,
               event_type="generation_checkpoint")
    view = CampaignJournal(CampaignJournal.corpus_path(str(corpus_dir))).replay()
    assert view.torn_records == 1
    assert not view.checkpoints  # the only checkpoint so far was torn off
    resume_and_compare(corpus_dir, baseline)


@pytest.mark.slow
@pytest.mark.parametrize("nth", [1, N_BUILTINS + 1])
def test_resume_after_journaled_insert(tmp_path, spec_file, baseline, nth):
    """Kill with a corpus_insert durable in the journal but its corpus write
    not yet performed: resume rolls the WAL forward (nth=1 dies during
    builtin registration, nth=N_BUILTINS+1 during the first harvest)."""
    corpus_dir = tmp_path / "corpus"
    run_killed(corpus_dir, spec_file, "post-append", nth=nth)
    view = CampaignJournal(CampaignJournal.corpus_path(str(corpus_dir))).replay()
    assert len(view.inserts) == nth
    # The last journaled insert never reached the corpus: a new trace is
    # still absent, a rediscovery's stored counter still lags the journal.
    last = view.inserts[-1]
    store = CorpusStore(str(corpus_dir))
    if last["new"]:
        assert last["fingerprint"] not in store
    else:
        assert store.get(last["fingerprint"]).rediscoveries == last["rediscoveries_after"] - 1
    resume_and_compare(corpus_dir, baseline)


@pytest.mark.slow
def test_resume_after_kill_before_corpus_rename(tmp_path, spec_file, baseline):
    """Kill between writing a corpus temp file and the os.replace publishing
    it: the orphan ``*.tmp`` is swept on reload and the journal replays the
    insert forward.  (nth=2: rename #1 is the fresh store's empty index;
    rename #2 publishes the first builtin's entry file.)"""
    corpus_dir = tmp_path / "corpus"
    run_killed(corpus_dir, spec_file, "pre-rename", nth=2)
    orphans = [name for name in os.listdir(corpus_dir) if name.endswith(".tmp")] + [
        name
        for name in os.listdir(os.path.join(corpus_dir, "entries"))
        if name.endswith(".tmp")
    ]
    assert orphans, "pre-rename kill should leave an orphan temp file"
    resume_and_compare(corpus_dir, baseline)
    leftover = [name for name in os.listdir(corpus_dir) if name.endswith(".tmp")]
    assert not leftover


# ---------------------------------------------------------------------- #
# Fleet crash recovery: kill a *worker* (the driver survives and the lease
# is stolen), and kill the *driver* (a rerun resumes the fleet campaign).
# ---------------------------------------------------------------------- #

FLEET_SPEC_PAYLOAD = dict(SPEC_PAYLOAD, name="crash-recovery-fleet", lease_ttl=2.0)


@pytest.fixture()
def fleet_spec_file(tmp_path):
    path = tmp_path / "fleet-spec.json"
    path.write_text(json.dumps(FLEET_SPEC_PAYLOAD), encoding="utf-8")
    return str(path)


def run_fleet_sim(corpus_dir: str, spec_file: str, *extra: str) -> dict:
    """Run crashsim in fleet mode to completion; returns its JSON report.

    Worker subprocesses share stdout, so the report is the last line.
    """
    argv = [
        sys.executable, CRASHSIM,
        "--corpus", str(corpus_dir), "--spec", spec_file, "--fleet",
    ] + list(extra)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(CRASHSIM), "..", "src")
    proc = subprocess.run(argv, env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, (
        f"fleet harness failed: {proc.returncode}\n"
        f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def fleet_baseline(tmp_path_factory):
    """Uninterrupted inline (``--fleet 0``) control for the fleet spec."""
    corpus_dir = tmp_path_factory.mktemp("fleet-baseline") / "corpus"
    spec_path = corpus_dir.parent / "spec.json"
    spec_path.write_text(json.dumps(FLEET_SPEC_PAYLOAD), encoding="utf-8")
    return run_fleet_sim(corpus_dir, str(spec_path), "0")


@pytest.mark.slow
def test_fleet_kill_worker_mid_generation(tmp_path, fleet_spec_file, fleet_baseline):
    """Worker w0 SIGKILLs itself right after its first generation checkpoint;
    the survivor steals the lease, resumes from the checkpoint, and the
    campaign is bit-identical to the uninterrupted control."""
    corpus_dir = tmp_path / "corpus"
    report = run_fleet_sim(
        corpus_dir, fleet_spec_file,
        "2", "--kill-worker", "0", "--kill-after-checkpoints", "1",
    )
    assert report == fleet_baseline
    view = CampaignJournal(CampaignJournal.corpus_path(str(corpus_dir))).replay()
    stolen = [
        sid for sid, lease in view.leases.items()
        if lease.get("lease_epoch", 0) >= 2
    ]
    assert stolen, "the killed worker's lease was never stolen"


@pytest.mark.slow
def test_fleet_driver_killed_then_resumed(tmp_path, fleet_spec_file, fleet_baseline):
    """SIGKILL the fleet *driver* mid-scenario (after the second generation
    checkpoint of its inline drain); rerunning the same fleet command resumes
    the campaign from the journal to bit-identity."""
    corpus_dir = tmp_path / "corpus"
    argv = [
        sys.executable, CRASHSIM,
        "--corpus", str(corpus_dir), "--spec", fleet_spec_file,
        "--fleet", "0", "--point", "post-checkpoint", "--nth", "2",
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(CRASHSIM), "..", "src")
    proc = subprocess.run(argv, env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    view = CampaignJournal(CampaignJournal.corpus_path(str(corpus_dir))).replay()
    assert view.scenario_seeds is not None
    assert view.pending_checkpoints()
    report = run_fleet_sim(corpus_dir, fleet_spec_file, "0")
    assert report == fleet_baseline


@pytest.mark.slow
def test_double_crash_then_resume(tmp_path, spec_file, baseline):
    """A resumed run that is itself SIGKILLed still resumes to bit-identity."""
    corpus_dir = tmp_path / "corpus"
    run_killed(corpus_dir, spec_file, "post-checkpoint", nth=1)
    argv = [
        sys.executable, CRASHSIM, "--corpus", str(corpus_dir), "--resume",
        "--point", "post-checkpoint", "--nth", "1",
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(CRASHSIM), "..", "src")
    proc = subprocess.run(argv, env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    resume_and_compare(corpus_dir, baseline)
