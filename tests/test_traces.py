"""Tests for trace containers, generators, mutation, crossover and constraints."""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import (
    LinkTrace,
    LinkTraceGenerator,
    LossTrace,
    LossTraceGenerator,
    PacketTrace,
    TraceValidationError,
    TrafficTrace,
    TrafficTraceGenerator,
    burstiness_index,
    check_link_invariants,
    crossover_traffic_traces,
    is_valid_trace,
    longest_silence,
    max_rate_deviation,
    mutate_link_trace,
    mutate_trace,
    mutate_traffic_trace,
    validate_trace,
)


class TestPacketTrace:
    def test_timestamps_sorted_and_clamped_on_construction(self):
        trace = PacketTrace(timestamps=[4.0, -1.0, 2.0, 99.0], duration=5.0)
        assert trace.timestamps == [0.0, 2.0, 4.0, 5.0]

    def test_average_rate(self):
        trace = PacketTrace(timestamps=[0.1 * i for i in range(50)], duration=5.0)
        assert trace.average_rate_pps == pytest.approx(10.0)
        assert trace.average_rate_mbps == pytest.approx(10 * 1500 * 8 / 1e6)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            PacketTrace(timestamps=[], duration=0.0)

    def test_windowed_counts_cover_duration(self):
        trace = PacketTrace(timestamps=[0.5, 1.5, 1.6, 4.9], duration=5.0)
        counts = dict(trace.windowed_counts(1.0))
        assert counts[0.0] == 1
        assert counts[1.0] == 2
        assert counts[4.0] == 1
        assert sum(counts.values()) == 4

    def test_packets_in_interval(self):
        trace = PacketTrace(timestamps=[1.0, 2.0, 3.0], duration=5.0)
        assert trace.packets_in_interval(0.5, 2.5) == 2

    def test_cumulative_counts_monotone(self):
        trace = PacketTrace(timestamps=[0.5, 1.0, 2.0], duration=5.0)
        counts = trace.cumulative_counts()
        assert counts == [(0.5, 1), (1.0, 2), (2.0, 3)]

    def test_copy_is_independent(self):
        trace = PacketTrace(timestamps=[1.0], duration=5.0, metadata={"a": 1})
        clone = trace.copy()
        clone.timestamps.append(2.0)
        clone.metadata["a"] = 2
        assert trace.timestamps == [1.0]
        assert trace.metadata["a"] == 1

    def test_json_roundtrip_preserves_type_and_data(self):
        trace = LinkTrace(timestamps=[0.5, 1.5], duration=5.0)
        restored = PacketTrace.from_json(trace.to_json())
        assert isinstance(restored, LinkTrace)
        assert restored.timestamps == trace.timestamps
        assert restored.duration == trace.duration

    def test_traffic_trace_json_roundtrip_keeps_budget(self):
        trace = TrafficTrace(timestamps=[1.0, 2.0], duration=5.0, max_packets=40)
        restored = PacketTrace.from_json(trace.to_json())
        assert isinstance(restored, TrafficTrace)
        assert restored.max_packets == 40


class TestTrafficTrace:
    def test_budget_enforced(self):
        with pytest.raises(ValueError):
            TrafficTrace(timestamps=[0.1, 0.2, 0.3], duration=1.0, max_packets=2)

    def test_default_budget_is_packet_count(self):
        trace = TrafficTrace(timestamps=[0.1, 0.2], duration=1.0)
        assert trace.max_packets == 2


class TestGenerators:
    def test_link_generator_fixed_packet_budget(self):
        generator = LinkTraceGenerator(duration=5.0, average_rate_mbps=12.0, seed=3)
        trace = generator.generate()
        assert trace.packet_count == 5000
        assert trace.average_rate_mbps == pytest.approx(12.0)

    def test_link_generator_population_all_same_budget(self):
        generator = LinkTraceGenerator(duration=2.0, average_rate_mbps=6.0, seed=3)
        population = generator.generate_population(5)
        counts = {trace.packet_count for trace in population}
        assert len(counts) == 1

    def test_link_generator_deterministic_per_seed(self):
        a = LinkTraceGenerator(duration=2.0, seed=9).generate()
        b = LinkTraceGenerator(duration=2.0, seed=9).generate()
        assert a.timestamps == b.timestamps

    def test_traffic_generator_respects_budget(self):
        generator = TrafficTraceGenerator(duration=5.0, max_packets=100, seed=5)
        for trace in generator.generate_population(10):
            assert trace.packet_count <= 100
            assert trace.max_packets == 100

    def test_traffic_generator_count_varies(self):
        generator = TrafficTraceGenerator(duration=5.0, max_packets=500, seed=5)
        counts = {trace.packet_count for trace in generator.generate_population(10)}
        assert len(counts) > 1

    def test_loss_generator_bounds(self):
        generator = LossTraceGenerator(duration=5.0, max_losses=7, seed=1)
        for trace in generator.generate_population(10):
            assert trace.packet_count <= 7
            assert all(0 <= t <= 5.0 for t in trace.timestamps)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinkTraceGenerator(duration=0.0)
        with pytest.raises(ValueError):
            TrafficTraceGenerator(duration=5.0, max_packets=0)
        with pytest.raises(ValueError):
            TrafficTraceGenerator(duration=5.0, max_packets=5, min_packets=9)


class TestMutation:
    def test_link_mutation_preserves_packet_count(self, rng):
        trace = LinkTraceGenerator(duration=5.0, seed=1).generate()
        for _ in range(10):
            mutated = mutate_link_trace(trace, rng)
            assert mutated.packet_count == trace.packet_count
            assert is_valid_trace(mutated)
            trace = mutated

    def test_link_mutation_changes_trace(self, rng):
        trace = LinkTraceGenerator(duration=5.0, seed=1).generate()
        mutated = mutate_link_trace(trace, rng)
        assert mutated.timestamps != trace.timestamps

    def test_link_invariants_hold_over_many_generations(self, rng):
        original = LinkTraceGenerator(duration=5.0, seed=2).generate()
        evolved = original
        for _ in range(25):
            evolved = mutate_link_trace(evolved, rng)
        assert check_link_invariants(original, evolved) == []

    def test_traffic_mutation_respects_budget(self, rng):
        trace = TrafficTraceGenerator(duration=5.0, max_packets=200, seed=2).generate()
        for _ in range(20):
            trace = mutate_traffic_trace(trace, rng)
            assert trace.packet_count <= trace.max_packets
            assert is_valid_trace(trace)

    def test_traffic_mutation_can_change_packet_count(self, rng):
        trace = TrafficTraceGenerator(duration=5.0, max_packets=200, seed=2).generate()
        counts = {mutate_traffic_trace(trace, rng).packet_count for _ in range(20)}
        assert len(counts) > 1

    def test_mutate_trace_dispatch(self, rng):
        link = LinkTraceGenerator(duration=2.0, seed=1).generate()
        traffic = TrafficTraceGenerator(duration=2.0, max_packets=50, seed=1).generate()
        loss = LossTraceGenerator(duration=2.0, max_losses=5, seed=1).generate()
        assert isinstance(mutate_trace(link, rng), LinkTrace)
        assert isinstance(mutate_trace(traffic, rng), TrafficTrace)
        assert isinstance(mutate_trace(loss, rng), LossTrace)
        with pytest.raises(TypeError):
            mutate_trace(PacketTrace(timestamps=[], duration=1.0), rng)


class TestCrossover:
    def test_child_within_budget_and_duration(self, rng):
        generator = TrafficTraceGenerator(duration=5.0, max_packets=300, seed=8)
        parent_a, parent_b = generator.generate(), generator.generate()
        for _ in range(20):
            child = crossover_traffic_traces(parent_a, parent_b, rng)
            assert child.packet_count <= child.max_packets
            assert is_valid_trace(child)

    def test_child_mixes_parents(self, rng):
        early = TrafficTrace(timestamps=[0.1 * i for i in range(1, 20)], duration=5.0, max_packets=100)
        late = TrafficTrace(timestamps=[4.0 + 0.05 * i for i in range(19)], duration=5.0, max_packets=100)
        children = [crossover_traffic_traces(early, late, rng) for _ in range(20)]
        assert any(
            any(t < 2.0 for t in child.timestamps) and any(t > 4.0 for t in child.timestamps)
            for child in children
        )

    def test_mismatched_durations_rejected(self, rng):
        a = TrafficTrace(timestamps=[0.1], duration=5.0, max_packets=10)
        b = TrafficTrace(timestamps=[0.1], duration=4.0, max_packets=10)
        with pytest.raises(ValueError):
            crossover_traffic_traces(a, b, rng)


class TestConstraints:
    def test_validate_accepts_generated_traces(self):
        trace = LinkTraceGenerator(duration=5.0, seed=11).generate()
        validate_trace(trace)

    def test_validate_rejects_budget_violation(self):
        trace = TrafficTrace(timestamps=[0.1, 0.2], duration=1.0, max_packets=5)
        trace.timestamps.extend([0.3] * 10)
        with pytest.raises(TraceValidationError):
            validate_trace(trace)

    def test_burstiness_zero_for_uniform_trace(self):
        uniform = PacketTrace(timestamps=[i * 0.05 for i in range(100)], duration=5.0)
        assert burstiness_index(uniform, window=0.5) == pytest.approx(0.0, abs=0.05)

    def test_burstiness_high_for_single_burst(self):
        burst = PacketTrace(timestamps=[2.0 + 0.001 * i for i in range(100)], duration=5.0)
        assert burstiness_index(burst, window=0.5) > 1.0

    def test_longest_silence(self):
        trace = PacketTrace(timestamps=[1.0, 1.1, 4.0], duration=5.0)
        assert longest_silence(trace) == pytest.approx(2.9)

    def test_longest_silence_empty_trace(self):
        assert longest_silence(PacketTrace(timestamps=[], duration=5.0)) == 5.0

    def test_max_rate_deviation_uniform(self):
        uniform = PacketTrace(timestamps=[i * 0.01 for i in range(500)], duration=5.0)
        assert max_rate_deviation(uniform, window=1.0) == pytest.approx(1.0, rel=0.05)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_link_mutation_preserves_invariants(seed):
    """Property: arbitrary mutation chains never break the link-fuzzing invariants."""
    rng = random.Random(seed)
    original = LinkTraceGenerator(duration=2.0, average_rate_mbps=6.0, seed=seed).generate()
    evolved = original
    for _ in range(5):
        evolved = mutate_link_trace(evolved, rng)
    assert evolved.packet_count == original.packet_count
    assert is_valid_trace(evolved)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_crossover_child_stays_valid(seed):
    """Property: crossover children always respect budget and time range."""
    rng = random.Random(seed)
    generator = TrafficTraceGenerator(duration=3.0, max_packets=150, seed=seed)
    parent_a, parent_b = generator.generate(), generator.generate()
    child = crossover_traffic_traces(parent_a, parent_b, rng)
    assert child.packet_count <= child.max_packets
    assert is_valid_trace(child)
