"""Threaded stdlib HTTP server for the dashboard and query/replay API.

Endpoint catalog (all GET, all read-only):

========================  ===================================================
``/``                     single-file HTML dashboard
``/api/status``           live campaign status (CLI-identical shaping)
``/api/stream``           long-poll tail of ``metrics.jsonl``
                          (``?offset=<byte>&wait=<s>``; add ``sse=1`` for a
                          Server-Sent-Events frame per record)
``/api/corpus``           corpus index rows
``/api/corpus/<fp>``      one entry: trace, triage, provenance chain
``/api/coverage``         behavior-map heatmap cells + gap analysis
``/api/rankings``         per-CCA vulnerability table
``/api/replay/<fp>``      re-simulate the entry (``?cca=<name>``), memoized
``/api/replay-stats``     replay cache statistics
``/metrics``              Prometheus text exposition (scrape-ready)
========================  ===================================================

Error contract: a JSON endpoint never returns a 500 and never a partial
body.  Responses are fully serialised before the first byte is sent
(``Content-Length`` always set); client errors get 400/404 with a JSON
``{"error": ...}`` body, and unexpected read races degrade to a 200 with an
``error`` field rather than tearing the connection.  The SSE mode is the
one deliberately incremental writer — each event frame carries one complete
JSON record, which is the framing SSE clients already tolerate losing.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..exec.backend import EvaluationBackend
from ..exec.cache import TraceCache
from ..obs.sinks import tail_metrics_records
from .html import DASHBOARD_HTML
from .query import MAX_STREAM_WAIT_S, DashboardQuery
from .replay import ReplayService

DEFAULT_HOST = "127.0.0.1"

#: Cadence of SSE polls against the metrics stream.
SSE_POLL_INTERVAL_S = 0.2


class _DashboardHandler(BaseHTTPRequestHandler):
    """Routes one request; the server instance hangs off ``self.server``."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # Populated by DashboardServer via a subclass attribute.
    dashboard: "DashboardServer"

    def log_message(self, format: str, *args: Any) -> None:
        if self.dashboard.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    # Response plumbing
    # ------------------------------------------------------------------ #

    def _send_bytes(
        self, body: bytes, content_type: str, status: int = 200
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: Dict[str, Any], status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_bytes(body, "application/json; charset=utf-8", status)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 - the never-500 contract
            try:
                self._send_json({"error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                pass

    def _route(self) -> None:
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        params = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        query = self.dashboard.query
        if path == "/":
            self._send_bytes(
                DASHBOARD_HTML.encode("utf-8"), "text/html; charset=utf-8"
            )
        elif path == "/api/status":
            self._send_json(query.status())
        elif path == "/api/stream":
            self._handle_stream(params)
        elif path == "/api/corpus":
            self._send_json(query.corpus_index())
        elif path.startswith("/api/corpus/"):
            fingerprint = path[len("/api/corpus/"):]
            payload = query.corpus_entry(fingerprint)
            if payload is None:
                self._send_json(
                    {"error": f"no corpus entry {fingerprint!r}"}, status=404
                )
            else:
                self._send_json(payload)
        elif path == "/api/coverage":
            self._send_json(query.coverage())
        elif path == "/api/rankings":
            self._send_json(query.rankings())
        elif path.startswith("/api/replay/"):
            self._handle_replay(path[len("/api/replay/"):], params)
        elif path == "/api/replay-stats":
            self._send_json(self.dashboard.replay.stats())
        elif path == "/metrics":
            self._send_bytes(
                query.prometheus().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._send_json({"error": f"no route {path!r}"}, status=404)

    # ------------------------------------------------------------------ #
    # Endpoint details
    # ------------------------------------------------------------------ #

    @staticmethod
    def _stream_args(params: Dict[str, str]) -> Tuple[int, float]:
        try:
            offset = max(0, int(params.get("offset", 0)))
        except ValueError:
            offset = 0
        try:
            wait = min(max(0.0, float(params.get("wait", 0))), MAX_STREAM_WAIT_S)
        except ValueError:
            wait = 0.0
        return offset, wait

    def _handle_stream(self, params: Dict[str, str]) -> None:
        offset, wait = self._stream_args(params)
        if params.get("sse"):
            self._serve_sse(offset, wait or MAX_STREAM_WAIT_S)
            return
        self._send_json(self.dashboard.query.stream(offset=offset, wait=wait))

    def _serve_sse(self, offset: int, wait: float) -> None:
        """Server-Sent-Events mode: one ``data:`` frame per record.

        Each event's ``id`` is the byte offset *after* that record, so a
        reconnecting ``EventSource`` resumes exactly where it left off via
        ``Last-Event-ID``.  The connection closes after ``wait`` seconds;
        SSE clients reconnect by contract.
        """
        last_id = self.headers.get("Last-Event-ID")
        if last_id:
            try:
                offset = max(0, int(last_id))
            except ValueError:
                pass
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        # SSE is an unbounded stream: no Content-Length, close delimits.
        self.send_header("Connection", "close")
        self.end_headers()
        deadline = time.monotonic() + wait
        path = self.dashboard.query.metrics_path
        while time.monotonic() < deadline and not self.dashboard.closing:
            records, offset = tail_metrics_records(path, offset)
            for record in records:
                frame = (
                    f"id: {offset}\n"
                    f"data: {json.dumps(record, sort_keys=True)}\n\n"
                )
                self.wfile.write(frame.encode("utf-8"))
            if records:
                self.wfile.flush()
            time.sleep(SSE_POLL_INTERVAL_S)

    def _handle_replay(self, fingerprint: str, params: Dict[str, str]) -> None:
        cca = params.get("cca", "")
        if not cca:
            self._send_json(
                {"error": "missing required query parameter 'cca'"}, status=400
            )
            return
        try:
            payload = self.dashboard.replay.replay(fingerprint, cca)
        except ValueError as exc:
            self._send_json({"error": str(exc)}, status=400)
            return
        if payload is None:
            self._send_json(
                {"error": f"no corpus entry {fingerprint!r}"}, status=404
            )
        else:
            self._send_json(payload)


class DashboardServer:
    """Owns the HTTP server, its worker threads, and the replay service.

    Binding happens in the constructor (``port=0`` picks a free port, read
    it back from :attr:`port`); request handling starts with :meth:`start`.
    Usable as a context manager::

        with DashboardServer(corpus_dir) as server:
            print(server.url)
    """

    def __init__(
        self,
        corpus_dir: str,
        host: str = DEFAULT_HOST,
        port: int = 0,
        backend: Optional[EvaluationBackend] = None,
        cache: Optional[TraceCache] = None,
        verbose: bool = False,
    ) -> None:
        self.corpus_dir = str(corpus_dir)
        self.verbose = verbose
        self.closing = False
        self.query = DashboardQuery(self.corpus_dir)
        self.replay = ReplayService(self.corpus_dir, backend=backend, cache=cache)
        handler = type("Handler", (_DashboardHandler,), {"dashboard": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "DashboardServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve loop (the CLI entry point's mode)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self.closing = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.replay.close()

    def __enter__(self) -> "DashboardServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
