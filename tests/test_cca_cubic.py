"""Unit tests for CUBIC, including the NS3 slow-start bug toggle (paper section 4.2)."""

from __future__ import annotations

import pytest

from repro.tcp.cca.base import AckEvent
from repro.tcp.cca.cubic import Cubic


def ack_event(now: float = 0.0, acked: int = 1, rtt: float = 0.04) -> AckEvent:
    return AckEvent(
        now=now,
        newly_acked=acked,
        newly_sacked=0,
        newly_delivered=acked,
        cumulative_ack=acked,
        delivered=acked,
        in_flight=10,
        rate_sample=None,
        rtt=rtt,
        in_recovery=False,
        in_rto_recovery=False,
    )


class TestSlowStart:
    def test_exponential_growth_below_ssthresh(self):
        cubic = Cubic(initial_cwnd=10, hystart=False)
        cubic.on_ack(ack_event(acked=5))
        assert cubic.cwnd == pytest.approx(15.0)

    def test_correct_variant_clamps_at_ssthresh(self):
        """Linux behaviour: a huge cumulative ACK cannot blow past ssthresh."""
        cubic = Cubic(initial_cwnd=10, initial_ssthresh=20, hystart=False)
        cubic.on_ack(ack_event(acked=500))
        # 10 segments of slow start, the remainder contributes only fractional
        # congestion-avoidance growth.
        assert cubic.cwnd < 20 + 30

    def test_ns3_bug_variant_ignores_ssthresh_clamp(self):
        """NS3 bug (section 4.2): the full cumulative jump lands in cwnd."""
        cubic = Cubic(initial_cwnd=10, initial_ssthresh=20, ns3_slow_start_bug=True, hystart=False)
        cubic.on_ack(ack_event(acked=500))
        assert cubic.cwnd == pytest.approx(510.0)
        assert cubic.max_slow_start_jump == pytest.approx(500.0)

    def test_bug_and_correct_agree_on_small_acks(self):
        buggy = Cubic(initial_cwnd=10, initial_ssthresh=100, ns3_slow_start_bug=True, hystart=False)
        correct = Cubic(initial_cwnd=10, initial_ssthresh=100, hystart=False)
        for _ in range(10):
            buggy.on_ack(ack_event(acked=2))
            correct.on_ack(ack_event(acked=2))
        assert buggy.cwnd == pytest.approx(correct.cwnd)


class TestHystart:
    def test_exit_when_round_min_rtt_rises(self):
        cubic = Cubic(initial_cwnd=10, hystart=True)
        # Establish the baseline RTT with a round of low-delay samples.
        for i in range(10):
            cubic.on_ack(ack_event(now=0.001 * i, acked=1, rtt=0.040))
        # Next round: every sample is 30 ms above the minimum.
        for i in range(10):
            cubic.on_ack(ack_event(now=0.05 + 0.001 * i, acked=1, rtt=0.070))
        assert cubic.hystart_exits >= 1
        assert cubic.ssthresh <= cubic.cwnd

    def test_no_exit_on_isolated_jitter(self):
        cubic = Cubic(initial_cwnd=10, hystart=True)
        for i in range(6):
            cubic.on_ack(ack_event(now=0.001 * i, acked=1, rtt=0.040))
        # A single inflated sample (e.g. a delayed ACK) must not end slow start.
        cubic.on_ack(ack_event(now=0.01, acked=1, rtt=0.080))
        assert cubic.hystart_exits == 0

    def test_disabled_hystart_never_exits(self):
        cubic = Cubic(initial_cwnd=10, hystart=False)
        for i in range(50):
            cubic.on_ack(ack_event(now=0.05 * i, acked=1, rtt=0.040 + 0.002 * i))
        assert cubic.hystart_exits == 0
        assert cubic.ssthresh == float("inf")


class TestLossResponse:
    def test_multiplicative_decrease_uses_beta(self):
        cubic = Cubic(initial_cwnd=100, initial_ssthresh=50, hystart=False)
        cubic.on_loss(now=1.0, in_flight=100)
        assert cubic.ssthresh == pytest.approx(70.0)
        assert cubic.cwnd == pytest.approx(70.0)

    def test_w_max_recorded_at_loss(self):
        cubic = Cubic(initial_cwnd=100, initial_ssthresh=50, hystart=False)
        cubic.on_loss(now=1.0, in_flight=100)
        assert cubic.w_max == pytest.approx(100.0)

    def test_fast_convergence_reduces_w_max_on_consecutive_losses(self):
        cubic = Cubic(initial_cwnd=100, initial_ssthresh=50, hystart=False)
        cubic.on_loss(now=1.0, in_flight=100)
        cubic.on_loss(now=2.0, in_flight=60)
        assert cubic.w_max < 100.0

    def test_rto_collapses_to_min_cwnd(self):
        cubic = Cubic(initial_cwnd=100, hystart=False)
        cubic.on_rto(now=1.0, in_flight=80)
        assert cubic.cwnd == pytest.approx(1.0)

    def test_growth_after_recovery_follows_cubic_curve(self):
        cubic = Cubic(initial_cwnd=100, initial_ssthresh=50, hystart=False)
        cubic.on_loss(now=0.0, in_flight=100)
        cubic.on_recovery_exit(now=0.1)
        start = cubic.cwnd
        for i in range(100):
            cubic.on_ack(ack_event(now=0.1 + 0.01 * i, acked=1))
        assert cubic.cwnd > start
        # The window approaches but does not wildly overshoot the prior w_max
        # within the first second after the loss.
        assert cubic.cwnd < 140


class TestInterface:
    def test_no_pacing(self):
        assert Cubic().pacing_rate is None

    def test_diagnostics_fields(self):
        diag = Cubic().diagnostics()
        assert {"ssthresh", "w_max", "max_slow_start_jump", "ns3_slow_start_bug"} <= set(diag)
