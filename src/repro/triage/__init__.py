"""Attack triage: turn raw fuzzing winners into minimal, validated evidence.

A GA winner is a starting point, not a finding.  This subsystem distills it
into the paper's actual deliverable through three cooperating engines, all
batching their candidate evaluations through the shared
:class:`~repro.exec.EvaluationBackend` / :class:`~repro.exec.TraceCache`
machinery:

* :mod:`minimize` — delta-debugging reduction: shrink a trace while keeping
  a configurable fraction of its attack score;
* :mod:`robustness` — re-score the attack across a perturbation matrix
  (bandwidth/RTT/queue jitter, time shifts, sender start offsets) and report
  how much of the matrix it survives;
* :mod:`differential` — replay the attack against every registered CCA and
  classify it as generic, class-specific or CCA-specific;
* :mod:`pipeline` — one-trace and whole-corpus orchestration, writing
  minimized variants back into the corpus with provenance links.
"""

from .differential import (
    DifferentialConfig,
    DifferentialReport,
    DifferentialRow,
    compare_ccas,
)
from .evaluation import BatchEvaluator, TraceScorer
from .minimize import (
    MinimizationResult,
    MinimizeConfig,
    minimize_trace,
    observed_retention,
    retention_floor,
    split_bursts,
)
from .pipeline import (
    CorpusTriageResult,
    CorpusTriageRow,
    TriageConfig,
    TriageReport,
    triage_corpus,
    triage_trace,
)
from .robustness import (
    RobustnessCell,
    RobustnessConfig,
    RobustnessReport,
    shift_trace,
    validate_robustness,
)

__all__ = [
    "BatchEvaluator",
    "CorpusTriageResult",
    "CorpusTriageRow",
    "DifferentialConfig",
    "DifferentialReport",
    "DifferentialRow",
    "MinimizationResult",
    "MinimizeConfig",
    "RobustnessCell",
    "RobustnessConfig",
    "RobustnessReport",
    "TraceScorer",
    "TriageConfig",
    "TriageReport",
    "compare_ccas",
    "minimize_trace",
    "observed_retention",
    "retention_floor",
    "shift_trace",
    "split_bursts",
    "triage_corpus",
    "triage_trace",
    "validate_robustness",
]
