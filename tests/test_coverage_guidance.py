"""Coverage-guided search: default bit-identity, novelty coverage, CLI.

Two acceptance properties anchor this file:

* ``guidance="score"`` (the default) is *bit-identical* to the
  pre-coverage fuzzer — the GA smoke history golden in
  ``test_sim_golden.py`` pins that against the seed capture, and the tests
  here additionally pin it against an explicitly-archived run; and
* ``guidance="novelty"`` discovers at least twice the behavior cells of
  ``guidance="score"`` on the builtin CUBIC smoke configuration (fixed
  seed, deterministic simulator — the comparison is exact, not
  statistical).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.attacks import cubic_two_burst_trace
from repro.campaign import CampaignRunner, CampaignSpec, CorpusStore, GaBudget
from repro.core.fuzzer import CCFuzz, FuzzConfig
from repro.coverage import BehaviorArchive, make_guidance, signature_from_summary
from repro.tcp.cca import cca_factory


def _history(result):
    return [
        [s.best_fitness, s.mean_fitness, s.evaluations, s.cache_hits]
        for s in result.generations
    ]


#: The builtin CUBIC smoke configuration: fuzz CUBIC in traffic mode,
#: population seeded entirely from the builtin two-burst attack (a single
#: behavior cell), strong elitism.  Score guidance exploits the attack;
#: novelty guidance has to diversify to rank well.
def _cubic_smoke_config(guidance: str) -> FuzzConfig:
    return FuzzConfig(
        mode="traffic",
        population_size=6,
        generations=15,
        k_elite=4,
        crossover_fraction=0.0,
        duration=2.0,
        seed=16,
        guidance=guidance,
        novelty_weight=2.0,
        immigrant_fraction=1.0,
    )


def _run_cubic_smoke(guidance: str):
    seeds = [cubic_two_burst_trace(duration=2.0)] * 6
    fuzzer = CCFuzz(cca_factory("cubic"), config=_cubic_smoke_config(guidance), seed_traces=seeds)
    return fuzzer.run()


class TestScoreGuidanceBitIdentity:
    def test_default_guidance_is_score(self):
        assert FuzzConfig().guidance == "score"
        assert CampaignSpec().guidance == "score"

    def test_archive_maintenance_does_not_perturb_score_runs(self):
        """An injected archive changes nothing about a score-guided search."""
        config = dict(
            mode="traffic", population_size=6, generations=3, duration=1.0,
            max_traffic_packets=60, seed=21,
        )
        plain = CCFuzz(cca_factory("reno"), config=FuzzConfig(**config)).run()
        archived = CCFuzz(
            cca_factory("reno"), config=FuzzConfig(**config), archive=BehaviorArchive()
        ).run()
        assert _history(plain) == _history(archived)
        assert plain.best_fitness == archived.best_fitness
        assert plain.best_trace.fingerprint() == archived.best_trace.fingerprint()

    def test_score_runs_still_report_coverage(self):
        result = CCFuzz(
            cca_factory("reno"),
            config=FuzzConfig(
                mode="traffic", population_size=6, generations=2, duration=1.0,
                max_traffic_packets=60, seed=21,
            ),
        ).run()
        assert result.guidance == "score"
        assert result.behavior_cells >= 1
        assert result.coverage["cells"] == result.behavior_cells
        assert result.generations[-1].behavior_cells == result.behavior_cells


class TestNoveltyCoverage:
    def test_novelty_fills_at_least_twice_the_cells(self):
        """The headline acceptance criterion (exact: fixed seed, pure simulator)."""
        score_run = _run_cubic_smoke("score")
        novelty_run = _run_cubic_smoke("novelty")
        assert score_run.behavior_cells >= 1
        assert novelty_run.behavior_cells >= 2 * score_run.behavior_cells, (
            f"novelty filled {novelty_run.behavior_cells} cells vs "
            f"{score_run.behavior_cells} for score"
        )

    def test_novelty_population_contains_immigrants_and_explorers(self):
        result = _run_cubic_smoke("novelty")
        origins = {ind.origin for ind in result.final_population}
        assert origins & {"immigrant", "explore"}, origins

    def test_immigrants_are_mode_and_duration_compatible(self):
        result = _run_cubic_smoke("novelty")
        for individual in result.final_population:
            assert individual.trace.duration == 2.0

    def test_elites_guidance_runs(self):
        result = CCFuzz(
            cca_factory("cubic"),
            config=FuzzConfig(
                mode="traffic", population_size=6, generations=3, duration=1.0,
                max_traffic_packets=60, seed=3, guidance="elites",
            ),
        ).run()
        assert result.guidance == "elites"
        assert result.behavior_cells >= 1


class TestValidation:
    def test_unknown_guidance_rejected(self):
        with pytest.raises(ValueError, match="guidance"):
            FuzzConfig(guidance="random")
        with pytest.raises(ValueError, match="guidance"):
            CampaignSpec(guidance="random")
        with pytest.raises(ValueError, match="guidance"):
            make_guidance("random")

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            FuzzConfig(novelty_weight=-1.0)
        with pytest.raises(ValueError):
            FuzzConfig(immigrant_fraction=1.5)


class TestCampaignCoverage:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        corpus_dir = str(tmp_path_factory.mktemp("coverage-corpus"))
        spec = CampaignSpec(
            name="coverage-smoke",
            ccas=["cubic"],
            modes=["traffic"],
            objectives=["throughput"],
            budget=GaBudget(population_size=4, generations=2, duration=1.5),
            seed=0,
            guidance="novelty",
        )
        corpus = CorpusStore(corpus_dir)
        runner = CampaignRunner(spec, corpus, register_attacks=False)
        result = runner.run()
        return corpus_dir, corpus, result

    def test_campaign_writes_behavior_map(self, campaign):
        corpus_dir, _, result = campaign
        map_path = BehaviorArchive.corpus_path(corpus_dir)
        assert os.path.exists(map_path)
        archive = BehaviorArchive.load(map_path)
        assert len(archive) == result.coverage["cells"] >= 1
        assert result.to_dict()["coverage"]["cells"] == len(archive)

    def test_scenario_outcomes_report_cells(self, campaign):
        _, _, result = campaign
        assert sum(o.behavior_cells for o in result.outcomes) == result.coverage["cells"]
        assert "cells" in result.outcomes[0].summary_row()

    def test_corpus_entries_annotated_by_cell(self, campaign):
        _, corpus, _ = campaign
        annotated = [entry for entry in corpus.entries() if entry.behavior]
        assert annotated, "harvested entries should carry behavior signatures"
        for entry in annotated:
            signature = signature_from_summary({"behavior_signature": entry.behavior})
            assert signature is not None
            assert entry.summary()["behavior_cell"] == signature.cell_key()
        cells = corpus.behavior_cells()
        assert set(cells) == {
            entry.behavior["cell"] for entry in annotated
        }

    def test_parallel_novelty_campaign_is_deterministic(self, tmp_path):
        """Thread interleaving must not change coverage-guided results."""

        def run(corpus_dir):
            spec = CampaignSpec(
                name="parallel-coverage",
                ccas=["reno", "cubic"],
                modes=["traffic"],
                objectives=["throughput"],
                budget=GaBudget(population_size=4, generations=2, duration=1.0),
                seed=5,
                guidance="novelty",
            )
            runner = CampaignRunner(
                spec, CorpusStore(corpus_dir), max_parallel=2, register_attacks=False
            )
            result = runner.run()
            return (
                [o.best_fingerprint for o in result.outcomes],
                [o.behavior_cells for o in result.outcomes],
                sorted(runner.archive.cell_keys()),
            )

        first = run(str(tmp_path / "a"))
        second = run(str(tmp_path / "b"))
        assert first == second

    def test_campaign_resumes_existing_map(self, campaign):
        corpus_dir, corpus, result = campaign
        spec = CampaignSpec(
            name="coverage-smoke-2",
            ccas=["cubic"],
            modes=["traffic"],
            objectives=["throughput"],
            budget=GaBudget(population_size=4, generations=1, duration=1.5),
            seed=1,
            guidance="novelty",
        )
        runner = CampaignRunner(spec, corpus, register_attacks=False)
        second = runner.run()
        # Coverage accumulates: the second campaign starts from the saved map.
        assert second.coverage["cells"] >= result.coverage["cells"]


class TestCoverageCli:
    def test_fuzz_guidance_and_coverage_output(self, tmp_path, capsys):
        from repro.cli import fuzz_main

        map_path = str(tmp_path / "map.json")
        exit_code = fuzz_main([
            "--cca", "cubic", "--mode", "traffic", "--population", "4",
            "--generations", "2", "--duration", "1.0", "--seed", "3",
            "--guidance", "novelty", "--coverage-output", map_path,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "behavior coverage (novelty guidance)" in output
        archive = BehaviorArchive.load(map_path)
        assert len(archive) >= 1

    def test_coverage_map_renders_campaign_corpus(self, tmp_path, capsys):
        from repro.cli import campaign_main, coverage_main

        corpus_dir = str(tmp_path / "corpus")
        spec_path = str(tmp_path / "spec.json")
        spec = CampaignSpec(
            name="cli-coverage",
            ccas=["cubic"],
            modes=["traffic"],
            objectives=["throughput"],
            budget=GaBudget(population_size=4, generations=1, duration=1.0),
            guidance="novelty",
        )
        with open(spec_path, "w") as handle:
            handle.write(spec.to_json())
        assert campaign_main(["run", "--spec", spec_path, "--corpus", corpus_dir]) == 0
        capsys.readouterr()

        assert coverage_main(["map", corpus_dir]) == 0
        output = capsys.readouterr().out
        assert "behavior coverage:" in output
        assert "cubic" in output

        assert coverage_main(["gaps", corpus_dir]) == 0
        assert "empty goodput x stall cells" in capsys.readouterr().out

        assert coverage_main(["diff", corpus_dir, corpus_dir]) == 0
        assert "shared" in capsys.readouterr().out

        assert coverage_main(["map", corpus_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"]

    def test_coverage_map_rebuild(self, tmp_path, capsys):
        from repro.cli import coverage_main, fuzz_main

        corpus_dir = str(tmp_path / "corpus")
        assert fuzz_main([
            "--cca", "cubic", "--population", "4", "--generations", "1",
            "--duration", "1.0", "--output-dir", corpus_dir,
        ]) == 0
        original = {
            entry.fingerprint: dict(entry.behavior)
            for entry in CorpusStore(corpus_dir).entries()
            if entry.behavior
        }
        assert original
        capsys.readouterr()
        assert coverage_main(["map", corpus_dir, "--rebuild", "--json"]) == 0
        captured = capsys.readouterr()
        assert "behavior map rebuilt" in captured.err
        # --json output stays machine-clean even with --rebuild.
        assert json.loads(captured.out)["cells"]
        assert os.path.exists(BehaviorArchive.corpus_path(corpus_dir))
        # Rebuilding an unchanged corpus reproduces the discovery-time
        # signatures bit-for-bit (same record_series=False evaluation).
        rebuilt = {
            entry.fingerprint: dict(entry.behavior)
            for entry in CorpusStore(corpus_dir).entries()
        }
        for fingerprint, behavior in original.items():
            assert rebuilt[fingerprint] == behavior
