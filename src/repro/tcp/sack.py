"""SACK scoreboard.

The scoreboard tracks per-segment state on the sender: which segments have
been selectively acknowledged, which are presumed lost, how often each has
been (re)transmitted, and the rate-sampling stamps of the most recent
transmission.  Loss detection follows the standard SACK heuristic (a segment
is presumed lost once ``dupthresh`` segments above it have been SACKed,
RFC 6675) plus Linux's RTO behaviour of marking every outstanding un-SACKed
segment lost — the behaviour that produces the spurious retransmissions BBR
trips over (paper section 4.1).

All hot-path queries (``pipe``, ``detect_losses``, ``next_lost_segment``) are
maintained incrementally so that ACK processing stays O(changed segments)
even for adversarial traces that keep ``snd_una`` pinned for seconds while
thousands of segments pile up above the hole.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..netsim.packet import SackBlock
from .rate_sampler import SegmentTxState


@dataclass(slots=True)
class SegmentState:
    """Sender-side state for one segment."""

    seq: int
    sacked: bool = False
    lost: bool = False
    acked: bool = False
    outstanding: bool = False
    transmissions: int = 0
    tx_state: Optional[SegmentTxState] = None
    first_sent_time: Optional[float] = None
    last_sent_time: Optional[float] = None

    @property
    def delivered(self) -> bool:
        return self.acked or self.sacked


class SackScoreboard:
    """Per-connection scoreboard of all sent-but-not-cumulatively-ACKed segments."""

    def __init__(
        self,
        dupthresh: int = 3,
        redetect_lost_retransmissions: bool = False,
        spurious_rtt_floor: float = 0.035,
    ) -> None:
        self.dupthresh = dupthresh
        #: A (S)ACK delivering a retransmitted segment sooner than this after
        #: its latest transmission must refer to an earlier copy, so the
        #: latest retransmission was spurious.  The default sits just below
        #: the minimum possible RTT of the paper's topology (2 x 20 ms).
        self.spurious_rtt_floor = spurious_rtt_floor
        #: When False (default, matching NS3 and pre-RACK Linux — the
        #: behaviour the paper's findings rely on), a retransmission that is
        #: itself lost is only recovered by the retransmission timeout.  When
        #: True, RACK-style evidence (a SACK for data sent after the
        #: retransmission) re-marks it lost so it can be retransmitted again.
        self.redetect_lost_retransmissions = redetect_lost_retransmissions
        self.segments: Dict[int, SegmentState] = {}
        self.snd_una = 0          #: lowest unacknowledged sequence number
        self.high_sacked = -1     #: highest SACKed sequence number seen
        self.total_retransmissions = 0
        self.spurious_retransmissions = 0

        # Incrementally maintained indices (hot-path bookkeeping).
        self._pipe = 0                              #: outstanding, undelivered segments
        self._undelivered: Set[int] = set()         #: sent but not yet (S)ACKed
        self._lost_unsent: List[int] = []           #: sorted seqs marked lost, awaiting retransmit
        self._sacked_sorted: List[int] = []         #: sorted SACKed (not cum-acked) seqs
        self._latest_sacked_send = 0.0              #: newest send time among SACKed segments
        # Loss-detection candidates: sent, undelivered, not currently marked
        # lost.  Kept sorted (plus a membership set) so ``detect_losses`` and
        # ``mark_all_outstanding_lost`` touch only real candidates instead of
        # re-walking — and re-sorting — every undelivered segment per ACK.
        self._candidates_sorted: List[int] = []
        self._candidate_set: Set[int] = set()
        # Set when new SACK information arrives; ``detect_losses`` is a no-op
        # otherwise (new first transmissions are always above the SACK
        # frontier, and retransmissions sent after the newest SACK can never
        # satisfy the RACK-style ordering check), so most ACKs skip the walk.
        self._detect_dirty = False

    # ------------------------------------------------------------------ #
    # Transmission bookkeeping
    # ------------------------------------------------------------------ #

    def on_transmit(self, seq: int, now: float, tx_state: SegmentTxState) -> SegmentState:
        """Record a (re)transmission of ``seq`` and return its state."""
        state = self.segments.get(seq)
        if state is None:
            state = SegmentState(seq)
            self.segments[seq] = state
        state.transmissions += 1
        if state.transmissions > 1:
            self.total_retransmissions += 1
        state.tx_state = tx_state
        state.last_sent_time = now
        if state.first_sent_time is None:
            state.first_sent_time = now
        if not state.outstanding and not state.delivered:
            self._pipe += 1
        state.outstanding = True
        if state.lost:
            state.lost = False
            self._remove_lost_unsent(seq)
        self._undelivered.add(seq)
        if not state.delivered and seq not in self._candidate_set:
            self._candidate_set.add(seq)
            bisect.insort(self._candidates_sorted, seq)
        return state

    # ------------------------------------------------------------------ #
    # ACK processing
    # ------------------------------------------------------------------ #

    def apply_cumulative_ack(
        self, cumulative_ack: int
    ) -> Tuple[List[SegmentState], List[SegmentState]]:
        """Advance ``snd_una``.

        Returns ``(newly_delivered, newly_full_acked)``:

        * ``newly_delivered`` — segments that had never been delivered before
          (not previously SACKed); this is what rate sampling counts, matching
          Linux's ``tp->delivered`` which increments once per segment.
        * ``newly_full_acked`` — every segment newly covered by the cumulative
          ACK, including previously-SACKed ones; this is the ``acked`` count
          the window-growth callbacks see (Linux ``tcp_clean_rtx_queue`` /
          NS3 ``segsAcked``), and it is what makes the post-RTO cumulative
          jump large in the CUBIC finding (section 4.2).
        """
        newly_delivered: List[SegmentState] = []
        newly_full_acked: List[SegmentState] = []
        if cumulative_ack <= self.snd_una:
            return newly_delivered, newly_full_acked
        for seq in range(self.snd_una, cumulative_ack):
            state = self.segments.get(seq)
            if state is None:
                # Segment was never sent (should not happen for a valid ACK)
                # but tolerate it so a buggy receiver cannot wedge the sender.
                continue
            if not state.acked:
                newly_full_acked.append(state)
                if not state.sacked:
                    newly_delivered.append(state)
            self._mark_delivered(state, via_sack=False)
            state.acked = True
        old_snd_una = self.snd_una
        self.snd_una = cumulative_ack
        # Drop cum-acked entries from the SACK index.
        if self._sacked_sorted:
            cut = bisect.bisect_left(self._sacked_sorted, cumulative_ack)
            self._sacked_sorted = self._sacked_sorted[cut:]
        if self._lost_unsent:
            cut = bisect.bisect_left(self._lost_unsent, cumulative_ack)
            self._lost_unsent = self._lost_unsent[cut:]
        return newly_delivered, newly_full_acked

    def apply_sack_blocks(
        self, blocks: Iterable[SackBlock], now: Optional[float] = None
    ) -> List[SegmentState]:
        """Mark segments covered by ``blocks`` as SACKed; return newly SACKed states.

        SACK blocks re-report the same ranges on every ACK, so the walk skips
        contiguous runs of already-SACKed sequence numbers via the sorted
        SACK index instead of re-checking each segment's flags; per ACK this
        costs O(log n + newly sacked) rather than O(block width).
        """
        newly_sacked: List[SegmentState] = []
        sacked_sorted = self._sacked_sorted
        segments = self.segments
        snd_una = self.snd_una
        for block in blocks:
            seq = block.start if block.start > snd_una else snd_una
            end = block.end
            if seq >= end:
                continue
            index = bisect.bisect_left(sacked_sorted, seq)
            while seq < end:
                # Skip the contiguous run of already-SACKed seqs starting at
                # `index` in one binary search: within a run, value minus
                # position is constant (the list is sorted and duplicate-free),
                # so find the first position where that invariant breaks.
                run_key = seq - index
                lo, hi = index, len(sacked_sorted)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if sacked_sorted[mid] - mid == run_key:
                        lo = mid + 1
                    else:
                        hi = mid
                seq += lo - index
                index = lo
                if seq >= end:
                    break
                state = segments.get(seq)
                if state is None or state.sacked or state.acked:
                    seq += 1
                    continue
                if (
                    state.transmissions > 1
                    and now is not None
                    and state.last_sent_time is not None
                    and now - state.last_sent_time < self.spurious_rtt_floor
                ):
                    # The delivery arrived sooner after the latest
                    # retransmission than a full round trip allows, so it must
                    # acknowledge an earlier copy: that retransmission was
                    # spurious (the Fig. 4c situation).
                    self.spurious_retransmissions += 1
                self._mark_delivered(state, via_sack=True)
                state.sacked = True
                self._detect_dirty = True
                newly_sacked.append(state)
                sacked_sorted.insert(index, seq)
                index += 1
                if state.last_sent_time is not None:
                    if state.last_sent_time > self._latest_sacked_send:
                        self._latest_sacked_send = state.last_sent_time
                if seq > self.high_sacked:
                    self.high_sacked = seq
                seq += 1
        return newly_sacked

    def _mark_delivered(self, state: SegmentState, via_sack: bool) -> None:
        if state.outstanding and not state.delivered:
            self._pipe -= 1
        state.outstanding = False
        if state.lost:
            state.lost = False
            self._remove_lost_unsent(state.seq)
        self._undelivered.discard(state.seq)
        self._remove_candidate(state.seq)

    # ------------------------------------------------------------------ #
    # Loss detection
    # ------------------------------------------------------------------ #

    def detect_losses(self) -> List[SegmentState]:
        """RFC 6675 style detection: mark un-SACKed holes below recent SACKs lost.

        A segment that has already been retransmitted is only re-marked lost
        when ``redetect_lost_retransmissions`` is enabled *and* there is fresh
        evidence that the retransmission itself was lost — a SACK for data
        sent after the retransmission (RACK-style ordering).  The default
        matches NS3 / pre-RACK Linux, where a lost retransmission waits for
        the RTO (the behaviour the paper's findings depend on).
        """
        newly_lost: List[SegmentState] = []
        if not self._detect_dirty:
            return newly_lost
        self._detect_dirty = False
        sacked_sorted = self._sacked_sorted
        if self.high_sacked < 0 or len(sacked_sorted) < self.dupthresh:
            # Fewer than dupthresh SACKed segments exist, so no segment can
            # have dupthresh SACKs above it.
            return newly_lost
        # ``dupthresh`` SACKs lie above seq exactly when seq is below the
        # dupthresh-th largest SACKed seq (no candidate is itself SACKed),
        # and that count only shrinks as seq grows — so the sorted candidate
        # walk stops at a single precomputed cutoff.
        cutoff = sacked_sorted[-self.dupthresh]
        candidates = self._candidates_sorted
        index = 0
        while index < len(candidates):
            seq = candidates[index]
            if seq >= cutoff:
                break
            state = self.segments[seq]
            if state.transmissions > 1:
                if not self.redetect_lost_retransmissions:
                    index += 1
                    continue
                if self._latest_sacked_send <= (state.last_sent_time or 0.0) + 1e-12:
                    index += 1
                    continue
            # _mark_lost removes candidates[index]; the next candidate slides
            # into this index, so it is not advanced.
            self._mark_lost(state)
            newly_lost.append(state)
        return newly_lost

    def mark_all_outstanding_lost(self) -> List[SegmentState]:
        """RTO behaviour: every sent, un-delivered segment is presumed lost."""
        newly_lost: List[SegmentState] = []
        for seq in list(self._candidates_sorted):
            if seq < self.snd_una:
                continue
            state = self.segments[seq]
            self._mark_lost(state)
            newly_lost.append(state)
        return newly_lost

    def _mark_lost(self, state: SegmentState) -> None:
        if state.outstanding:
            self._pipe -= 1
        state.outstanding = False
        state.lost = True
        bisect.insort(self._lost_unsent, state.seq)
        self._remove_candidate(state.seq)

    def _remove_candidate(self, seq: int) -> None:
        if seq in self._candidate_set:
            self._candidate_set.discard(seq)
            index = bisect.bisect_left(self._candidates_sorted, seq)
            self._candidates_sorted.pop(index)

    def _remove_lost_unsent(self, seq: int) -> None:
        index = bisect.bisect_left(self._lost_unsent, seq)
        if index < len(self._lost_unsent) and self._lost_unsent[index] == seq:
            self._lost_unsent.pop(index)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def next_lost_segment(self) -> Optional[int]:
        """Lowest segment marked lost and not currently outstanding."""
        while self._lost_unsent:
            seq = self._lost_unsent[0]
            state = self.segments.get(seq)
            if state is None or state.delivered or not state.lost or state.outstanding:
                self._lost_unsent.pop(0)
                continue
            return seq
        return None

    def pipe(self) -> int:
        """Packets believed to be in flight (RFC 6675 ``pipe`` analogue)."""
        return self._pipe

    def has_unacked_data(self) -> bool:
        return bool(self._undelivered)

    def sacked_count(self) -> int:
        return len(self._sacked_sorted)

    def lost_count(self) -> int:
        return sum(
            1
            for seq in self._undelivered
            if (state := self.segments.get(seq)) is not None and state.lost
        )

    def get(self, seq: int) -> Optional[SegmentState]:
        return self.segments.get(seq)

    def purge_acked(self, keep_below: int = 0) -> None:
        """Drop fully acknowledged segments below ``snd_una`` to bound memory."""
        threshold = max(0, self.snd_una - keep_below)
        stale = [
            seq
            for seq, state in self.segments.items()
            if seq < threshold and state.delivered and seq not in self._undelivered
        ]
        for seq in stale:
            del self.segments[seq]
