"""Campaign execution: run every scenario over one shared evaluation pool.

The runner expands a :class:`CampaignSpec` into its scenario matrix and
drives each scenario's :class:`CCFuzz` search with

* **one shared** :class:`EvaluationBackend` — a process pool is created once
  and reused by every scenario instead of being torn down per run, and
* **one shared, thread-safe** :class:`TraceCache` — a trace already scored
  against a CCA/config in one scenario is never re-simulated by another.

With ``max_parallel > 1`` scenarios run on coordinator threads that submit
their generation batches to the shared pool concurrently, so the pool keeps
working while any one scenario does its (cheap, GIL-bound) GA bookkeeping —
the worker processes never idle between scenarios.

Each scenario is seeded from the corpus (curated builtin attacks plus the
best traces earlier scenarios discovered — e.g. winners against Reno seeding
the CUBIC and BBR searches) and its top-k survivors are harvested back into
the corpus with full provenance.  Individual scenario results are
deterministic functions of the injected seeds: serial campaigns (the
default) are fully reproducible end to end, while parallel campaigns draw
seeds from the corpus snapshot taken at launch so the schedule's
interleaving cannot change what any scenario sees.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.fuzzer import CCFuzz
from ..coverage.archive import BehaviorArchive
from ..exec.backend import EvaluationBackend, create_backend
from ..exec.cache import TraceCache
from ..scoring.objectives import make_score_function
from ..tcp.cca import cca_factory
from ..traces.trace import PacketTrace
from .corpus import CorpusStore
from .spec import CampaignSpec, Scenario

ProgressCallback = Callable[[str], None]


@dataclass
class ScenarioOutcome:
    """What one scenario of the matrix produced."""

    scenario: Scenario
    best_fitness: float
    best_fingerprint: str
    evaluations: int                       #: simulations actually run (cache misses)
    cache_hits: int
    seeds_injected: int
    new_corpus_entries: int
    converged_generation: int
    wall_time_s: float
    behavior_cells: int = 0                #: archive cells this scenario opened

    def summary_row(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario.scenario_id,
            "best_fitness": self.best_fitness,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "seeds": self.seeds_injected,
            "new_entries": self.new_corpus_entries,
            "cells": self.behavior_cells,
            "generations": self.converged_generation + 1,
            "wall_s": round(self.wall_time_s, 2),
        }


@dataclass
class CampaignResult:
    """Outcome of a whole campaign run."""

    spec: CampaignSpec
    outcomes: List[ScenarioOutcome]
    corpus_stats: Dict[str, Any]
    cache_stats: Dict[str, Any]
    wall_time_s: float = 0.0
    attacks_registered: int = 0
    #: Campaign-level behavior-coverage statistics (the shared archive).
    coverage: Dict[str, Any] = field(default_factory=dict)

    def summary_rows(self) -> List[Dict[str, Any]]:
        return [outcome.summary_row() for outcome in self.outcomes]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "scenarios": self.summary_rows(),
            "corpus": dict(self.corpus_stats),
            "cache": dict(self.cache_stats),
            "coverage": dict(self.coverage),
            "wall_time_s": round(self.wall_time_s, 2),
            "attacks_registered": self.attacks_registered,
            "total_evaluations": sum(o.evaluations for o in self.outcomes),
            "total_cache_hits": sum(o.cache_hits for o in self.outcomes),
        }


class CampaignRunner:
    """Plans, schedules and records a whole campaign of fuzzing runs."""

    def __init__(
        self,
        spec: CampaignSpec,
        corpus: CorpusStore,
        *,
        backend: Optional[EvaluationBackend] = None,
        cache: Optional[TraceCache] = None,
        archive: Optional[BehaviorArchive] = None,
        max_parallel: int = 1,
        register_attacks: bool = True,
        harvest_top_k: int = 3,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if max_parallel < 1:
            raise ValueError("max_parallel must be at least 1")
        if harvest_top_k < 1:
            raise ValueError("harvest_top_k must be at least 1")
        if max_parallel > 1 and cache is not None and not cache.thread_safe:
            raise ValueError(
                "an injected cache must be TraceCache(thread_safe=True) when "
                "max_parallel > 1 (scenario threads share it)"
            )
        self.spec = spec
        self.corpus = corpus
        # One behavior archive spans the whole campaign; a pre-existing
        # behavior_map.json next to the corpus is resumed so coverage
        # accumulates across campaigns like the corpus itself does.  Serial
        # campaigns thread it straight through every scenario; parallel
        # campaigns give each scenario a private archive and merge afterwards
        # (see run()), keeping results independent of thread interleaving.
        if archive is not None:
            self.archive = archive
        else:
            map_path = BehaviorArchive.corpus_path(corpus.path)
            self.archive = (
                BehaviorArchive.load(map_path) if os.path.exists(map_path) else BehaviorArchive()
            )
        self.max_parallel = max_parallel
        self.register_attacks = register_attacks
        self.harvest_top_k = harvest_top_k
        self._progress = progress or (lambda message: None)
        self._injected_backend = backend
        self._injected_cache = cache

    # ------------------------------------------------------------------ #
    # Corpus bootstrap
    # ------------------------------------------------------------------ #

    def _register_builtin_attacks(self) -> int:
        """Insert the hand-crafted attack library as curated corpus entries."""
        from ..attacks import builtin_attack_traces

        added = 0
        for name, trace in builtin_attack_traces(self.spec.budget.duration).items():
            added += self.corpus.add(
                trace,
                scenario_id=f"builtin/{name}",
                origin="builtin",
                campaign=self.spec.name,
            )
        return added

    # ------------------------------------------------------------------ #
    # Scenario execution
    # ------------------------------------------------------------------ #

    def _run_scenario(
        self,
        scenario: Scenario,
        backend: EvaluationBackend,
        cache: Optional[TraceCache],
        seeds: List[PacketTrace],
        archive: BehaviorArchive,
    ) -> ScenarioOutcome:
        started = time.perf_counter()
        fuzzer = CCFuzz(
            cca_factory(scenario.cca),
            config=scenario.fuzz_config(),
            score_function=make_score_function(scenario.objective, scenario.mode),
            seed_traces=seeds,
            backend=backend,
            cache=cache,
            archive=archive,
        )
        result = fuzzer.run()
        new_entries = 0
        for individual in result.top_individuals(self.harvest_top_k):
            if not individual.is_evaluated:
                continue
            behavior = individual.result_summary.get("behavior_signature")
            new_entries += self.corpus.add(
                individual.trace,
                scenario_id=scenario.scenario_id,
                cca=scenario.cca,
                objective=scenario.objective,
                score=individual.fitness,
                generation_found=individual.generation_born,
                origin="fuzz",
                campaign=self.spec.name,
                condition=scenario.condition.to_dict(),
                behavior=dict(behavior) if isinstance(behavior, dict) else None,
            )
        outcome = ScenarioOutcome(
            scenario=scenario,
            best_fitness=result.best_fitness,
            best_fingerprint=result.best_trace.fingerprint(),
            evaluations=result.total_evaluations,
            cache_hits=result.cache_hits,
            seeds_injected=len(result.seed_fingerprints),
            new_corpus_entries=new_entries,
            converged_generation=result.converged_generation,
            wall_time_s=time.perf_counter() - started,
            behavior_cells=result.behavior_cells,
        )
        self._progress(
            f"[{scenario.scenario_id}] best={outcome.best_fitness:.4f} "
            f"evals={outcome.evaluations} hits={outcome.cache_hits} "
            f"seeds={outcome.seeds_injected} new={outcome.new_corpus_entries} "
            f"cells={outcome.behavior_cells} ({outcome.wall_time_s:.1f}s)"
        )
        return outcome

    def _scenario_seeds(self, scenario: Scenario) -> List[PacketTrace]:
        return self.corpus.seeds_for(
            scenario.mode,
            scenario.budget.duration,
            self.spec.seed_limit,
            objective=scenario.objective,
            bottleneck_rate_mbps=scenario.condition.bottleneck_rate_mbps,
        )

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #

    def run(self) -> CampaignResult:
        """Execute every scenario and return the campaign summary."""
        started = time.perf_counter()
        scenarios = self.spec.expand()
        self._progress(
            f"campaign {self.spec.name!r}: {len(scenarios)} scenarios "
            f"({len(self.spec.ccas)} CCAs x {len(self.spec.modes)} modes x "
            f"{len(self.spec.objectives)} objectives x {len(self.spec.conditions)} conditions)"
        )
        attacks_registered = 0
        if self.register_attacks:
            attacks_registered = self._register_builtin_attacks()
            self._progress(f"registered {attacks_registered} builtin attack traces")

        backend = self._injected_backend or create_backend(self.spec.backend, self.spec.workers)
        owns_backend = self._injected_backend is None
        cache = self._injected_cache
        if cache is None:
            population = self.spec.budget.population_size * self.spec.budget.islands
            cache = TraceCache(
                max_entries=max(8192, 8 * population * len(scenarios)),
                thread_safe=True,
            )
        outcomes: List[ScenarioOutcome] = []
        scenario_archives: List[BehaviorArchive] = []
        archive_baseline: Optional[BehaviorArchive] = None
        try:
            if self.max_parallel == 1:
                # Serial: later scenarios see (and are seeded by) everything
                # earlier scenarios put into the corpus — and, with coverage
                # guidance, every cell earlier scenarios opened in the shared
                # archive.
                for scenario in scenarios:
                    seeds = self._scenario_seeds(scenario)
                    outcomes.append(
                        self._run_scenario(scenario, backend, cache, seeds, self.archive)
                    )
            else:
                # Parallel: seeds come from the corpus snapshot at launch so
                # thread interleaving cannot change any scenario's inputs.
                # Each scenario likewise runs on its *own* snapshot of the
                # campaign archive (novelty/elites guidance read the archive
                # during selection, so a concurrently-mutated shared archive
                # would make results depend on thread interleaving); the
                # snapshots are merged back baseline-aware in matrix order.
                seed_snapshot = [self._scenario_seeds(scenario) for scenario in scenarios]
                archive_baseline = self.archive.snapshot()
                scenario_archives = [self.archive.snapshot() for _ in scenarios]
                with ThreadPoolExecutor(
                    max_workers=min(self.max_parallel, len(scenarios)),
                    thread_name_prefix="repro-campaign",
                ) as pool:
                    outcomes = list(
                        pool.map(
                            lambda args: self._run_scenario(*args),
                            (
                                (scenario, backend, cache, seeds, archive)
                                for scenario, seeds, archive in zip(
                                    scenarios, seed_snapshot, scenario_archives
                                )
                            ),
                        )
                    )
        finally:
            if owns_backend:
                backend.close()
            # Merge and persist the behavior map even if a scenario failed
            # mid-campaign: completed scenarios already wrote their corpus
            # entries (and mutated their archives in place), and the coverage
            # CLI and future campaigns resume the map from here.
            for archive in scenario_archives:
                self.archive.merge(archive, baseline=archive_baseline)
            self.archive.save(BehaviorArchive.corpus_path(self.corpus.path))
        return CampaignResult(
            spec=self.spec,
            outcomes=outcomes,
            corpus_stats=self.corpus.stats(),
            cache_stats=dict(cache.stats()),
            wall_time_s=time.perf_counter() - started,
            attacks_registered=attacks_registered,
            coverage=self.archive.coverage(),
        )
