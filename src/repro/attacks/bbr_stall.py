"""Hand-crafted traces that trigger the BBR stall of paper section 4.1.

The genetic search discovers traces with this structure automatically
(Fig. 4a/4b); the crafted versions here make the mechanism reproducible in a
single deterministic run, which is what the Fig. 4c mechanism analysis and
several tests build on.

Mechanism recap: a cross-traffic burst overflows the gateway queue and drops
some of BBR's packets; a second burst ~1 RTT later drops the fast
retransmission of the first hole.  BBR keeps sending new (SACKed) data while
it waits out the 1-second minimum RTO, so when the RTO finally fires the most
recently sent packets' SACKs are still in flight.  The RTO marks them lost,
BBR spuriously retransmits them, the arriving original SACKs then produce
rate samples anchored on the rewritten ``prior_delivered`` stamps — ending
probing rounds prematurely and filling the 10-round max filter with tiny
samples.  The bandwidth estimate collapses and the delayed-ACK feedback loop
keeps it collapsed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..netsim.link import mbps_to_pps
from ..traces.trace import LinkTrace, TrafficTrace


def _burst(start: float, packets: int, duration: float) -> List[float]:
    spacing = duration / max(packets, 1)
    return [start + i * spacing for i in range(packets)]


def bbr_stall_traffic_trace(
    duration: float = 6.0,
    first_burst_time: float = 1.0,
    burst_packets: int = 350,
    burst_duration: float = 0.25,
    burst_period: float = 1.05,
    mss_bytes: int = 1500,
) -> TrafficTrace:
    """Cross-traffic pattern that wrecks default BBR's bandwidth estimate.

    This is the structure CC-Fuzz's traffic fuzzing converges to for the
    low-throughput objective against BBR (section 4.1): intense bursts spaced
    roughly one minimum-RTO apart.  Each burst (i) overflows the gateway
    queue, losing some of BBR's packets and usually their fast
    retransmissions, which forces a retransmission timeout, and (ii) the next
    burst lands around that RTO, so the flow's delayed SACKs arrive right
    after the spurious retransmissions — producing the rewritten
    ``prior_delivered`` samples that prematurely end probing rounds and fill
    the bandwidth max-filter with tiny values.  Between bursts the link is
    idle, yet BBR cannot use it because its own estimate has collapsed.
    """
    times: List[float] = []
    start = first_burst_time
    while start < duration:
        times.extend(
            t for t in _burst(start, burst_packets, burst_duration) if t < duration
        )
        start += burst_period
    times.sort()
    return TrafficTrace(
        timestamps=times,
        duration=duration,
        mss_bytes=mss_bytes,
        metadata={
            "kind": "traffic",
            "attack": "bbr_stall",
            "burst_packets": burst_packets,
            "burst_period": burst_period,
        },
        max_packets=max(len(times), 1),
    )


def bbr_double_loss_burst_trace(
    duration: float = 6.0,
    hole_time: float = 1.0,
    hole_burst_packets: int = 100,
    retransmission_burst_packets: int = 250,
    rto_burst_packets: int = 900,
    rto_delay: float = 0.95,
    mss_bytes: int = 1500,
) -> TrafficTrace:
    """The minimal three-spike pattern behind the Fig. 4a finding.

    Spike 1 creates the hole, spike 2 (one RTT later) kills its fast
    retransmission, and spike 3 lands around the pending retransmission
    timeout so that the flow's SACKs are delayed past the RTO.  After the
    cross traffic ends the flow remains persistently degraded.
    """
    spike_1 = _burst(hole_time, hole_burst_packets, 0.01)
    spike_2 = _burst(hole_time + 0.06, retransmission_burst_packets, 0.16)
    spike_3 = _burst(hole_time + rto_delay, rto_burst_packets, 0.35)
    times = sorted(t for t in spike_1 + spike_2 + spike_3 if t < duration)
    return TrafficTrace(
        timestamps=times,
        duration=duration,
        mss_bytes=mss_bytes,
        metadata={"kind": "traffic", "attack": "bbr_double_loss"},
        max_packets=max(len(times), 1),
    )


def bbr_stall_link_trace(
    duration: float = 6.0,
    average_rate_mbps: float = 12.0,
    outages: Optional[Sequence[Tuple[float, float]]] = None,
    mss_bytes: int = 1500,
) -> LinkTrace:
    """Link-mode equivalent of the stall trace: repeated service outages.

    During each outage the bottleneck serves nothing, so the flow's packets
    queue up, overflow and are lost (including fast retransmissions whose
    window an outage covers), and SACKs are delayed until service resumes.
    The withheld transmission opportunities are replayed in a catch-up burst
    right after each outage, so the trace keeps the fixed total packet budget
    (and therefore the 12 Mbps average) that link fuzzing requires.

    The default outage schedule mirrors what link fuzzing converges to: one
    outage pair that creates a hole and kills its retransmission, and a later,
    longer outage that overlaps the resulting retransmission timeout.
    """
    if outages is None:
        # One long outage that spans the victim's retransmission timeout plus
        # periodic follow-up outages: packets (and retransmissions) sent into
        # the blocked, overflowing queue are lost, SACKs are delayed past the
        # RTO, and the catch-up bursts deliver those SACKs right after the
        # spurious retransmissions.
        outages = ((1.0, 1.15), (2.6, 0.45), (3.8, 0.45), (5.0, 0.45))
    rate_pps = mbps_to_pps(average_rate_mbps, mss_bytes)
    total_packets = int(round(rate_pps * duration))
    interval = 1.0 / rate_pps

    def in_outage(t: float) -> Optional[int]:
        for index, (start, length) in enumerate(outages):
            if start <= t < start + length:
                return index
        return None

    times: List[float] = []
    deferred = [0] * len(outages)
    t = 0.0
    for _ in range(total_packets):
        index = in_outage(t)
        if index is None:
            times.append(t)
        else:
            deferred[index] += 1
        t += interval
    for (start, length), count in zip(outages, deferred):
        if count:
            times.extend(_burst(start + length, count, 0.05))
    times = sorted(min(x, duration - 1e-6) for x in times)
    return LinkTrace(
        timestamps=times,
        duration=duration,
        mss_bytes=mss_bytes,
        metadata={"kind": "link", "attack": "bbr_stall", "outages": list(outages)},
    )


def bbr_delay_attack_trace(
    duration: float = 5.0,
    prefill_packets: int = 150,
    prefill_time: float = 0.0,
    reinforce_start: float = 0.3,
    reinforce_end: float = 1.4,
    reinforce_packets: int = 300,
    mss_bytes: int = 1500,
) -> TrafficTrace:
    """Cross traffic that makes BBR hold a large standing queue (Fig. 4e).

    Two components, mirroring what the GA finds with the high-delay score:
    (1) fill the queue just before the BBR flow starts so BBR never observes
    the true minimum RTT (its RTprop filter latches an inflated value for the
    whole 10-second filter window), and (2) keep a moderate cross-traffic
    stream flowing through BBR's STARTUP/DRAIN phase so the queue never fully
    empties — otherwise DRAIN would reveal the true RTT and undo the attack.

    The paper's Fig. 4e shows queueing delays of 100-200 ms, which implies a
    bottleneck buffer of a few hundred packets; run this trace with
    ``SimulationConfig(queue_capacity=250)`` (as the Fig. 4e benchmark does)
    and a sender start time slightly after the prefill.
    """
    prefill = _burst(prefill_time, prefill_packets, duration=0.03)
    reinforce = _burst(reinforce_start, reinforce_packets, duration=reinforce_end - reinforce_start)
    times = sorted(t for t in prefill + reinforce if t < duration)
    return TrafficTrace(
        timestamps=times,
        duration=duration,
        mss_bytes=mss_bytes,
        metadata={"kind": "traffic", "attack": "bbr_delay"},
        max_packets=max(len(times), 1),
    )
