"""Cross-traffic injection.

In traffic-fuzzing mode the adversary controls a sequence of cross-traffic
packet injection times (section 3.3).  The cross traffic is open-loop
("UDP-like"): packets are pushed into the gateway queue at the trace times
regardless of drops, and simply counted at the sink.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from .engine import EventScheduler
from .packet import CROSS_FLOW, DEFAULT_MSS, Packet

EnqueueCallback = Callable[[Packet, float], bool]


class CrossTrafficSource:
    """Injects one cross-traffic packet into the gateway per trace timestamp.

    Parameters
    ----------
    scheduler:
        Simulation event scheduler.
    enqueue:
        Callable that admits a packet to the gateway queue and returns whether
        it was accepted (``False`` means tail-dropped).
    injection_times:
        Packet injection timestamps in seconds.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        enqueue: EnqueueCallback,
        injection_times: Sequence[float],
        mss_bytes: int = DEFAULT_MSS,
    ) -> None:
        self.scheduler = scheduler
        self.enqueue = enqueue
        self.injection_times: List[float] = sorted(float(t) for t in injection_times)
        if any(t < 0 for t in self.injection_times):
            raise ValueError("cross-traffic injection times must be non-negative")
        self.mss_bytes = mss_bytes
        self.sent = 0
        self.dropped = 0

    def start(self, horizon: float = None) -> None:
        """Schedule every injection (optionally clipped to ``horizon``)."""
        for t in self.injection_times:
            if horizon is not None and t > horizon:
                continue
            self.scheduler.schedule_at(t, self._inject)

    def _inject(self) -> None:
        now = self.scheduler.now
        packet = Packet(flow=CROSS_FLOW, seq=self.sent, size_bytes=self.mss_bytes, sent_time=now)
        self.sent += 1
        admitted = self.enqueue(packet, now)
        if not admitted:
            self.dropped += 1
