"""Crossover operators.

The paper only defines crossover for traffic traces (section 3.3): choose a
split point by packet count, take the left part of one parent and the right
part of the other, and combine the timestamp sets.  The child's packet count
therefore varies naturally with the parents.  Link traces use no crossover
(section 3.2) because there is no obvious way to splice two service curves
while preserving the total-packet and rate-variation invariants.
"""

from __future__ import annotations

import random
from typing import Tuple

from .trace import LossTrace, TrafficTrace


def crossover_traffic_traces(
    parent_a: TrafficTrace,
    parent_b: TrafficTrace,
    rng: random.Random,
) -> TrafficTrace:
    """Splice the left half of one parent with the right half of the other."""
    if abs(parent_a.duration - parent_b.duration) > 1e-9:
        raise ValueError("crossover requires parents with identical durations")
    # Randomly decide which parent contributes the left part.
    if rng.random() < 0.5:
        left_parent, right_parent = parent_a, parent_b
    else:
        left_parent, right_parent = parent_b, parent_a

    # Split point chosen by packet count (as a fraction, so it is meaningful
    # for parents of different sizes); the corresponding *time* boundary comes
    # from the left parent so the child's left portion ends where it should.
    fraction = rng.random()
    left_count = int(round(fraction * left_parent.packet_count))
    left_part = left_parent.timestamps[:left_count]
    boundary = left_part[-1] if left_part else 0.0

    right_start = int(round(fraction * right_parent.packet_count))
    right_part = [t for t in right_parent.timestamps[right_start:] if t >= boundary]

    max_packets = max(parent_a.max_packets, parent_b.max_packets)
    combined = sorted(left_part + right_part)
    if len(combined) > max_packets:
        # Respect the global injection budget by dropping a random subset.
        drop = len(combined) - max_packets
        for _ in range(drop):
            combined.pop(rng.randrange(len(combined)))

    child = TrafficTrace(
        timestamps=combined,
        duration=parent_a.duration,
        mss_bytes=parent_a.mss_bytes,
        metadata={"kind": "traffic", "crossover": True},
        max_packets=max_packets,
    )
    return child


def crossover_loss_traces(
    parent_a: LossTrace,
    parent_b: LossTrace,
    rng: random.Random,
) -> LossTrace:
    """Same splice operation for loss schedules (section 5 extension)."""
    if abs(parent_a.duration - parent_b.duration) > 1e-9:
        raise ValueError("crossover requires parents with identical durations")
    split_time = rng.uniform(0.0, parent_a.duration)
    left = [t for t in parent_a.timestamps if t < split_time]
    right = [t for t in parent_b.timestamps if t >= split_time]
    return LossTrace(
        timestamps=left + right,
        duration=parent_a.duration,
        mss_bytes=parent_a.mss_bytes,
        metadata={"kind": "loss", "crossover": True},
    )


def crossover_traces(parent_a, parent_b, rng: random.Random):
    """Dispatch to the type-appropriate crossover operator."""
    if isinstance(parent_a, TrafficTrace) and isinstance(parent_b, TrafficTrace):
        return crossover_traffic_traces(parent_a, parent_b, rng)
    if isinstance(parent_a, LossTrace) and isinstance(parent_b, LossTrace):
        return crossover_loss_traces(parent_a, parent_b, rng)
    raise TypeError(
        f"no crossover operator for trace types {type(parent_a).__name__} / {type(parent_b).__name__}"
    )
