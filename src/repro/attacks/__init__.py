"""Known adversarial traffic patterns used as baselines for the GA's findings."""

from .bbr_stall import (
    bbr_delay_attack_trace,
    bbr_double_loss_burst_trace,
    bbr_stall_link_trace,
    bbr_stall_traffic_trace,
)
from .fault_injection import TargetedLoss, lose_segment_and_retransmission
from .lowrate import attack_rate_mbps, lowrate_attack_times, lowrate_attack_trace

__all__ = [
    "TargetedLoss",
    "attack_rate_mbps",
    "bbr_delay_attack_trace",
    "bbr_double_loss_burst_trace",
    "bbr_stall_link_trace",
    "bbr_stall_traffic_trace",
    "lose_segment_and_retransmission",
    "lowrate_attack_times",
    "lowrate_attack_trace",
]
