"""CI gate: fail on events/sec regressions of the simulation core.

Compares a freshly generated ``BENCH_sim_core.json`` against the committed
one and exits non-zero when any throughput metric regressed by more than the
tolerance (default 20%).  The fresh file's measured telemetry overhead is
gated against an absolute budget (``--telemetry-budget``, default 2%, with
the same noise tolerance applied on shared runners).

Usage::

    python benchmarks/check_sim_core_regression.py COMMITTED.json FRESH.json \
        [--tolerance 0.20] [--telemetry-budget 0.02]
"""

from __future__ import annotations

import argparse
import json
import sys

#: (section, metric) pairs gated by the regression check.
GATED_METRICS = [
    ("traffic_mode", "events_per_sec"),
    ("link_mode", "events_per_sec"),
    ("fuzz_smoke", "evals_per_sec"),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("committed", help="BENCH_sim_core.json from the repository")
    parser.add_argument("fresh", help="BENCH_sim_core.json produced by this run")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="maximum allowed fractional regression (default: 0.20)",
    )
    parser.add_argument(
        "--telemetry-budget",
        type=float,
        default=0.02,
        help="maximum allowed telemetry overhead_fraction in the fresh "
             "measurement (default: 0.02)",
    )
    args = parser.parse_args(argv)

    with open(args.committed) as handle:
        committed = json.load(handle)["current"]
    with open(args.fresh) as handle:
        fresh = json.load(handle)["current"]

    failures = []
    for section, metric in GATED_METRICS:
        reference = committed.get(section, {}).get(metric)
        measured = fresh.get(section, {}).get(metric)
        if reference is None or measured is None:
            failures.append(f"{section}.{metric}: missing (ref={reference}, new={measured})")
            continue
        floor = reference * (1.0 - args.tolerance)
        status = "ok" if measured >= floor else "REGRESSION"
        print(
            f"{section}.{metric}: committed={reference:.1f} fresh={measured:.1f} "
            f"floor={floor:.1f} [{status}]"
        )
        if measured < floor:
            failures.append(
                f"{section}.{metric} regressed: {measured:.1f} < {floor:.1f} "
                f"({args.tolerance:.0%} below committed {reference:.1f})"
            )

    overhead = fresh.get("telemetry_overhead", {}).get("overhead_fraction")
    if overhead is None:
        failures.append("telemetry_overhead.overhead_fraction: missing from fresh run")
    else:
        # Absolute budget, widened by the same noise tolerance the throughput
        # gates use (shared CI runners jitter single-digit percents).
        ceiling = args.telemetry_budget * (1.0 + args.tolerance)
        status = "ok" if overhead <= ceiling else "OVER BUDGET"
        print(
            f"telemetry_overhead.overhead_fraction: measured={overhead:.4f} "
            f"budget={args.telemetry_budget:.4f} ceiling={ceiling:.4f} [{status}]"
        )
        if overhead > ceiling:
            failures.append(
                f"telemetry overhead {overhead:.1%} exceeds the "
                f"{args.telemetry_budget:.0%} budget (ceiling {ceiling:.1%})"
            )

    if failures:
        print("\n".join(["", "simulation-core perf gate FAILED:"] + failures), file=sys.stderr)
        return 1
    print("simulation-core perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
