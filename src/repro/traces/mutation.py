"""Mutation operators.

Link-trace mutation (section 3.2): pick a random split point, keep one side
unchanged, and regenerate the other side with DIST_PACKETS using the same
packet count — this preserves the initial generation's invariants (total
packet budget, bounded rate variation).

Traffic-trace mutation (section 3.3): same split-and-regenerate structure,
but the regenerated portion's packet count is re-drawn at random (bounded so
the whole trace stays within ``max_packets``), and no rate constraints are
applied.
"""

from __future__ import annotations

import bisect
import random
from typing import Optional

from .distpackets import DEFAULT_K_AGG, DEFAULT_RATE_BOUND, dist_packets
from .trace import LinkTrace, LossTrace, TrafficTrace


def mutate_link_trace(
    trace: LinkTrace,
    rng: random.Random,
    k_agg: float = DEFAULT_K_AGG,
    rate_bound: float = DEFAULT_RATE_BOUND,
) -> LinkTrace:
    """Regenerate one side of a random split point, preserving packet count."""
    if trace.packet_count == 0:
        return trace.copy()
    split_time = rng.uniform(0.0, trace.duration)
    split_index = bisect.bisect_left(trace.timestamps, split_time)
    regenerate_left = rng.random() < 0.5

    if regenerate_left:
        kept = trace.timestamps[split_index:]
        count = split_index
        regenerated = dist_packets(count, 0.0, split_time, rng, k_agg=k_agg, rate_bound=rate_bound)
        new_timestamps = regenerated + kept
    else:
        kept = trace.timestamps[:split_index]
        count = trace.packet_count - split_index
        regenerated = dist_packets(
            count, split_time, trace.duration, rng, k_agg=k_agg, rate_bound=rate_bound
        )
        new_timestamps = kept + regenerated

    mutated = LinkTrace(
        timestamps=new_timestamps,
        duration=trace.duration,
        mss_bytes=trace.mss_bytes,
        metadata=dict(trace.metadata),
    )
    mutated.metadata["mutated"] = True
    return mutated


def mutate_traffic_trace(
    trace: TrafficTrace,
    rng: random.Random,
    k_agg: float = DEFAULT_K_AGG,
) -> TrafficTrace:
    """Regenerate one side of a random split with a re-drawn packet count."""
    split_time = rng.uniform(0.0, trace.duration)
    split_index = bisect.bisect_left(trace.timestamps, split_time)
    regenerate_left = rng.random() < 0.5

    if regenerate_left:
        kept = trace.timestamps[split_index:]
        budget = max(0, trace.max_packets - len(kept))
        count = rng.randint(0, budget)
        regenerated = dist_packets(count, 0.0, split_time, rng, k_agg=k_agg, rate_bound=None)
        new_timestamps = regenerated + kept
    else:
        kept = trace.timestamps[:split_index]
        budget = max(0, trace.max_packets - len(kept))
        count = rng.randint(0, budget)
        regenerated = dist_packets(
            count, split_time, trace.duration, rng, k_agg=k_agg, rate_bound=None
        )
        new_timestamps = kept + regenerated

    mutated = TrafficTrace(
        timestamps=new_timestamps,
        duration=trace.duration,
        mss_bytes=trace.mss_bytes,
        metadata=dict(trace.metadata),
        max_packets=trace.max_packets,
    )
    mutated.metadata["mutated"] = True
    return mutated


def mutate_loss_trace(
    trace: LossTrace,
    rng: random.Random,
    max_losses: Optional[int] = None,
    jitter: float = 0.1,
) -> LossTrace:
    """Perturb a loss schedule: jitter, add or remove individual loss times."""
    max_losses = max_losses if max_losses is not None else max(trace.packet_count, 1)
    times = list(trace.timestamps)
    action = rng.random()
    if action < 0.4 and times:
        # Jitter one loss time.
        idx = rng.randrange(len(times))
        times[idx] = min(max(times[idx] + rng.gauss(0.0, jitter), 0.0), trace.duration)
    elif action < 0.7 and len(times) < max_losses:
        times.append(rng.uniform(0.0, trace.duration))
    elif times:
        times.pop(rng.randrange(len(times)))
    mutated = LossTrace(
        timestamps=times,
        duration=trace.duration,
        mss_bytes=trace.mss_bytes,
        metadata=dict(trace.metadata),
    )
    mutated.metadata["mutated"] = True
    return mutated


def mutate_trace(trace, rng: random.Random, **kwargs):
    """Dispatch to the type-appropriate mutation operator."""
    if isinstance(trace, TrafficTrace):
        return mutate_traffic_trace(trace, rng, **kwargs)
    if isinstance(trace, LossTrace):
        return mutate_loss_trace(trace, rng, **kwargs)
    if isinstance(trace, LinkTrace):
        return mutate_link_trace(trace, rng, **kwargs)
    raise TypeError(f"no mutation operator for trace type {type(trace).__name__}")
