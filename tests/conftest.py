"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.netsim.simulation import SimulationConfig


@pytest.fixture
def rng() -> random.Random:
    """Deterministic random source for trace-generation tests."""
    return random.Random(1234)


@pytest.fixture
def short_config() -> SimulationConfig:
    """A short simulation configuration used to keep unit tests fast."""
    return SimulationConfig(duration=2.0)


@pytest.fixture
def paper_config() -> SimulationConfig:
    """The paper's section-4 configuration (5 s at 12 Mbps, 20 ms delay)."""
    return SimulationConfig.paper_defaults()
