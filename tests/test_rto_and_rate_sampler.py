"""Unit tests for RTT/RTO estimation and delivery-rate sampling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.rate_sampler import DeliveryRateEstimator
from repro.tcp.rto import RttEstimator


class TestRttEstimator:
    def test_first_sample_initialises_srtt(self):
        estimator = RttEstimator()
        estimator.update(0.1)
        assert estimator.srtt == pytest.approx(0.1)
        assert estimator.rttvar == pytest.approx(0.05)

    def test_smoothing_follows_rfc6298(self):
        estimator = RttEstimator()
        estimator.update(0.1)
        estimator.update(0.2)
        assert estimator.srtt == pytest.approx(0.1 * 7 / 8 + 0.2 / 8)

    def test_min_rto_floor_applied(self):
        estimator = RttEstimator(min_rto=1.0)
        estimator.update(0.04)
        assert estimator.rto >= 1.0

    def test_small_min_rto_tracks_rtt(self):
        estimator = RttEstimator(min_rto=0.2)
        for _ in range(20):
            estimator.update(0.04)
        assert estimator.rto < 0.5

    def test_exponential_backoff_doubles(self):
        estimator = RttEstimator(min_rto=1.0)
        estimator.update(0.04)
        base = estimator.rto
        estimator.on_timeout()
        assert estimator.rto == pytest.approx(2 * base)
        estimator.on_timeout()
        assert estimator.rto == pytest.approx(4 * base)

    def test_backoff_reset_on_new_sample(self):
        estimator = RttEstimator(min_rto=1.0)
        estimator.update(0.04)
        estimator.on_timeout()
        estimator.update(0.05)
        assert estimator.backoff_count == 0

    def test_max_rto_cap(self):
        estimator = RttEstimator(min_rto=1.0, max_rto=8.0)
        estimator.update(0.04)
        for _ in range(10):
            estimator.on_timeout()
        assert estimator.rto == 8.0

    def test_initial_rto_before_samples(self):
        estimator = RttEstimator(initial_rto=1.0)
        assert estimator.rto == 1.0

    def test_non_positive_sample_rejected(self):
        estimator = RttEstimator()
        with pytest.raises(ValueError):
            estimator.update(0.0)

    @settings(max_examples=50, deadline=None)
    @given(samples=st.lists(st.floats(min_value=1e-4, max_value=5.0), min_size=1, max_size=50))
    def test_property_rto_bounded(self, samples):
        """Property: the RTO always stays within [min_rto, max_rto]."""
        estimator = RttEstimator(min_rto=1.0, max_rto=60.0)
        for sample in samples:
            estimator.update(sample)
            assert 1.0 <= estimator.rto <= 60.0


class TestDeliveryRateEstimator:
    def test_steady_stream_measures_true_rate(self):
        """Packets sent and delivered at 100/s measure ~100 packets/s."""
        estimator = DeliveryRateEstimator()
        interval = 0.01
        rtt = 0.05
        tx_states = []
        for i in range(50):
            send_time = i * interval
            tx_states.append(estimator.on_segment_sent(send_time, packets_in_flight=i % 5, is_retransmit=False))
            if i >= 5:
                # Deliver the packet sent 5 intervals ago (one RTT later).
                delivered_index = i - 5
                sample = estimator.on_segment_delivered(
                    delivered_index * interval + rtt, tx_states[delivered_index], newly_delivered=1
                )
        assert sample.delivery_rate == pytest.approx(100.0, rel=0.15)

    def test_delivered_counter_accumulates(self):
        estimator = DeliveryRateEstimator()
        tx = estimator.on_segment_sent(0.0, 0, False)
        estimator.on_segment_delivered(0.05, tx, newly_delivered=3)
        assert estimator.delivered == 3

    def test_retransmitted_segment_gives_no_rtt(self):
        estimator = DeliveryRateEstimator()
        tx = estimator.on_segment_sent(0.0, 0, is_retransmit=True)
        sample = estimator.on_segment_delivered(0.05, tx, newly_delivered=1)
        assert sample.rtt is None
        assert sample.is_retransmit

    def test_original_segment_gives_rtt(self):
        estimator = DeliveryRateEstimator()
        tx = estimator.on_segment_sent(0.0, 0, is_retransmit=False)
        sample = estimator.on_segment_delivered(0.05, tx, newly_delivered=1)
        assert sample.rtt == pytest.approx(0.05)

    def test_negative_delivery_count_rejected(self):
        estimator = DeliveryRateEstimator()
        tx = estimator.on_segment_sent(0.0, 0, False)
        with pytest.raises(ValueError):
            estimator.on_segment_delivered(0.1, tx, newly_delivered=-1)

    def test_post_idle_sample_uses_long_interval(self):
        """A delivery long after the previous one yields a low rate sample.

        This is the shape of the poisoned samples in the BBR stall: a small
        delivered delta over an interval dominated by the delivery gap.
        """
        estimator = DeliveryRateEstimator()
        tx0 = estimator.on_segment_sent(0.0, 0, False)
        estimator.on_segment_delivered(0.04, tx0, newly_delivered=1)
        # Retransmission sent much later, then delivered shortly afterwards;
        # prior_delivered_time still points at the old delivery.
        tx1 = estimator.on_segment_sent(1.0, 1, is_retransmit=True)
        sample = estimator.on_segment_delivered(1.02, tx1, newly_delivered=1)
        assert sample.ack_elapsed == pytest.approx(1.02 - 0.04)
        assert sample.delivery_rate < 5.0

    def test_spurious_retransmission_rewrites_prior_delivered(self):
        """Retransmitting a segment stamps it with the *current* delivered count.

        This is exactly the bookkeeping that corrupts BBR's probe-round
        clocking (section 4.1): the retransmitted copy of an old segment
        carries a fresh ``prior_delivered``.
        """
        estimator = DeliveryRateEstimator()
        original = estimator.on_segment_sent(0.0, 0, False)
        for i in range(10):
            tx = estimator.on_segment_sent(0.001 * (i + 1), i + 1, False)
            estimator.on_segment_delivered(0.05 + 0.001 * i, tx, newly_delivered=1)
        retransmission = estimator.on_segment_sent(0.2, 0, is_retransmit=True)
        assert original.prior_delivered == 0
        assert retransmission.prior_delivered == 10

    def test_first_tx_time_resets_when_pipe_empty(self):
        estimator = DeliveryRateEstimator()
        estimator.on_segment_sent(0.0, 0, False)
        tx = estimator.on_segment_sent(5.0, 0, False)
        assert tx.first_tx_time == 5.0
