#!/usr/bin/env python3
"""Triage a builtin attack: minimize it, stress it, compare CCAs.

Runs the full triage pipeline on the hand-crafted CUBIC two-burst attack
(or any other builtin): the delta-debugging minimizer strips the trace down
to its load-bearing bursts, the robustness validator re-scores the minimal
pattern across perturbed networks, and the differential comparator shows
which CCAs the attack actually bites.

Usage:
    python examples/triage_attack.py [--attack NAME] [--duration SECONDS]
"""

from __future__ import annotations

import argparse

from repro.analysis import format_triage_report
from repro.attacks import builtin_attack_traces
from repro.netsim import SimulationConfig
from repro.triage import MinimizeConfig, TriageConfig, triage_trace

#: CCA each builtin attack was designed against.
TARGET_CCA = {
    "lowrate": "reno",
    "cubic-two-burst": "cubic",
    "bbr-stall": "bbr",
    "bbr-double-loss": "bbr",
    "bbr-delay": "bbr",
    "bbr-stall-link": "bbr",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--attack", choices=sorted(TARGET_CCA), default="cubic-two-burst")
    parser.add_argument("--duration", type=float, default=4.0)
    parser.add_argument("--budget", type=int, default=80,
                        help="simulation budget for the minimizer")
    args = parser.parse_args()

    trace = builtin_attack_traces(args.duration)[args.attack]
    cca = TARGET_CCA[args.attack]
    print(
        f"Triaging builtin attack {args.attack!r} against {cca} "
        f"({trace.packet_count} events over {args.duration}s)\n"
    )

    report = triage_trace(
        trace,
        cca=cca,
        sim_config=SimulationConfig(duration=args.duration),
        config=TriageConfig(
            minimize=MinimizeConfig(retention=0.9, max_evaluations=args.budget)
        ),
    )
    print(format_triage_report(report.to_dict()))
    print(
        f"\n{report.simulations} simulations (+{report.cache_hits} cache hits) "
        f"in {report.wall_time_s:.1f}s"
    )

    minimized = report.minimization
    if minimized.reduced:
        print(
            f"\nThe minimizer removed {minimized.events_before - minimized.events_after} "
            f"of {minimized.events_before} events while keeping "
            f"{minimized.achieved_retention:.1%} of the attack score — the survivors "
            f"are the load-bearing structure worth writing up."
        )
    else:
        print("\nThe trace was already minimal under the retention bound.")


if __name__ == "__main__":
    main()
