"""Trace generation substrate: DIST_PACKETS, trace types, mutation, crossover."""

from .constraints import (
    TraceValidationError,
    burstiness_index,
    check_link_invariants,
    is_valid_trace,
    longest_silence,
    max_rate_deviation,
    validate_trace,
    windowed_rate_extremes,
)
from .crossover import crossover_loss_traces, crossover_traces, crossover_traffic_traces
from .distpackets import DEFAULT_K_AGG, DEFAULT_RATE_BOUND, dist_packets
from .generator import LinkTraceGenerator, LossTraceGenerator, TrafficTraceGenerator
from .mutation import (
    mutate_link_trace,
    mutate_loss_trace,
    mutate_trace,
    mutate_traffic_trace,
)
from .trace import LinkTrace, LossTrace, PacketTrace, TrafficTrace

__all__ = [
    "DEFAULT_K_AGG",
    "DEFAULT_RATE_BOUND",
    "LinkTrace",
    "LinkTraceGenerator",
    "LossTrace",
    "LossTraceGenerator",
    "PacketTrace",
    "TraceValidationError",
    "TrafficTrace",
    "TrafficTraceGenerator",
    "burstiness_index",
    "check_link_invariants",
    "crossover_loss_traces",
    "crossover_traces",
    "crossover_traffic_traces",
    "dist_packets",
    "is_valid_trace",
    "longest_silence",
    "max_rate_deviation",
    "mutate_link_trace",
    "mutate_loss_trace",
    "mutate_trace",
    "mutate_traffic_trace",
    "validate_trace",
    "windowed_rate_extremes",
]
